#ifndef AIM_CATALOG_CATALOG_H_
#define AIM_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/statistics.h"
#include "catalog/types.h"
#include "common/result.h"

namespace aim::catalog {

/// Column definition within a table.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Average stored width in bytes (strings: average length).
  uint32_t avg_width = 8;
  bool nullable = false;
};

/// \brief Secondary-index definition.
///
/// `hypothetical` indexes are "dataless" (Sec. III-A4): they carry metadata
/// and statistics for what-if costing but are never materialized. This is
/// the HypoPG / AutoAdmin "what-if" contract.
struct IndexDef {
  IndexId id = kInvalidIndex;
  TableId table = kInvalidTable;
  std::string name;
  std::vector<ColumnId> columns;  // key parts, in order
  bool unique = false;
  bool hypothetical = false;
  /// The clustered primary key (auto-created per table). Contains every
  /// column of the row (InnoDB-style clustered organization).
  bool is_primary = false;
  /// True if this index was created by automation (AIM) rather than a human;
  /// used by the continuous regression detector.
  bool created_by_automation = false;

  bool operator==(const IndexDef& o) const {
    return table == o.table && columns == o.columns;
  }
};

/// Table definition: columns, primary key, indexes, statistics.
struct TableDef {
  TableId id = kInvalidTable;
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ColumnId> primary_key;
  TableStats stats;

  /// Looks up a column id by name (case-insensitive). Returns nullopt if
  /// absent.
  std::optional<ColumnId> FindColumn(const std::string& name) const;

  /// Average full-row width in bytes.
  double RowWidth() const;
  /// Sum of avg widths of `cols`.
  double ColumnsWidth(const std::vector<ColumnId>& cols) const;
};

/// \brief The schema + statistics catalog for one database.
///
/// Owns real and hypothetical index definitions. Cloneable (value type) so
/// MyShadow can snapshot it.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; assigns and returns its id.
  TableId AddTable(TableDef table);

  const TableDef& table(TableId id) const { return tables_[id]; }
  TableDef* mutable_table(TableId id) { return &tables_[id]; }
  size_t table_count() const { return tables_.size(); }
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Case-insensitive table lookup by name.
  Result<TableId> FindTable(const std::string& name) const;

  /// Adds an index (real or hypothetical). Fails with AlreadyExists when an
  /// index with the same column list already exists on the table (matching
  /// MySQL's duplicate-index check).
  Result<IndexId> AddIndex(IndexDef index);
  Status DropIndex(IndexId id);
  /// Drops every hypothetical index (end of a what-if session).
  void DropAllHypothetical();

  const IndexDef* index(IndexId id) const;
  /// All live indexes on `table`. The clustered primary index is included
  /// by default (the optimizer needs it); pass include_primary = false
  /// for secondary-only inventories.
  std::vector<const IndexDef*> TableIndexes(
      TableId table, bool include_hypothetical = true,
      bool include_primary = true) const;
  /// All live indexes in the catalog.
  std::vector<const IndexDef*> AllIndexes(bool include_hypothetical = true,
                                          bool include_primary =
                                              true) const;

  /// Finds an existing index with exactly these key parts.
  const IndexDef* FindIndex(TableId table,
                            const std::vector<ColumnId>& columns) const;

  /// Estimated on-disk size of a secondary index in bytes: key parts +
  /// appended primary key + per-row overhead, times a structure factor.
  double IndexSizeBytes(const IndexDef& index) const;
  /// Estimated base-table size in bytes.
  double TableSizeBytes(TableId table) const;
  /// Total size of all real secondary indexes.
  double TotalIndexBytes() const;

  const ColumnStats& column_stats(ColumnRef ref) const {
    return tables_[ref.table].stats.columns[ref.column];
  }

  /// Content hash of the schema and statistics — tables, columns, primary
  /// keys, row counts, and per-column distribution stats — deliberately
  /// EXCLUDING index definitions. A persisted what-if cache keys every
  /// entry by its index-configuration fingerprint already, so index DDL
  /// between tuning intervals must not invalidate it; anything that would
  /// change a plan's cost for a fixed configuration (schema or statistics
  /// drift) does.
  uint64_t SchemaStatsFingerprint() const;

  /// Human-readable "table(col1, col2, ...)" for diagnostics.
  std::string DescribeIndex(const IndexDef& index) const;

 private:
  std::vector<TableDef> tables_;
  std::unordered_map<std::string, TableId> table_by_name_;
  // Index storage; dropped slots become nullopt (ids stay stable). Kept as
  // a value container so Catalog is copyable (MyShadow clones it).
  std::vector<std::optional<IndexDef>> indexes_;
};

}  // namespace aim::catalog

#endif  // AIM_CATALOG_CATALOG_H_
