#ifndef AIM_CATALOG_STATISTICS_H_
#define AIM_CATALOG_STATISTICS_H_

#include <cstdint>
#include <vector>

#include "catalog/types.h"

namespace aim::catalog {

/// \brief Per-column data-distribution statistics.
///
/// An equi-depth histogram over the int64 domain supports range-selectivity
/// estimation; string columns carry NDV-only statistics (equality and IN
/// selectivity). These are exactly the statistics a "dataless" /
/// hypothetical index can offer (Sec. III-A4).
struct ColumnStats {
  uint64_t ndv = 1;           // number of distinct values
  double null_fraction = 0.0; // fraction of NULLs
  int64_t min = 0;            // int64/date domain only
  int64_t max = 0;
  /// Equi-depth bucket upper bounds (ascending); each bucket holds an equal
  /// share of rows. Empty = assume uniform over [min, max].
  std::vector<int64_t> histogram;

  /// Fraction of rows with value == v (int64 domain).
  double EqSelectivity(int64_t v) const;
  /// Fraction of rows in [lo, hi] (closed; use INT64_MIN/MAX for open ends).
  double RangeSelectivity(int64_t lo, int64_t hi) const;
  /// Equality selectivity when the literal is unknown (normalized query):
  /// 1/ndv discounted by null fraction.
  double DefaultEqSelectivity() const;

  /// Builds an equi-depth histogram from a sample of values.
  static ColumnStats FromSample(std::vector<int64_t> sample,
                                uint64_t ndv_hint = 0, int buckets = 32);
};

/// \brief Statistics describing one table.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // indexed by ColumnId
};

}  // namespace aim::catalog

#endif  // AIM_CATALOG_STATISTICS_H_
