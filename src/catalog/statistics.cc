#include "catalog/statistics.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace aim::catalog {

double ColumnStats::DefaultEqSelectivity() const {
  if (ndv == 0) return 1.0;
  return (1.0 - null_fraction) / static_cast<double>(ndv);
}

double ColumnStats::EqSelectivity(int64_t v) const {
  if (v < min || v > max) return 0.0;
  return DefaultEqSelectivity();
}

double ColumnStats::RangeSelectivity(int64_t lo, int64_t hi) const {
  if (hi < lo) return 0.0;
  if (!histogram.empty()) {
    // Each bucket holds 1/B of the non-null rows; interpolate within the
    // partially covered boundary buckets. Duplicate bucket bounds denote
    // heavy hitters: such a bucket is a singleton at the bound value.
    const size_t b = histogram.size();
    double covered = 0.0;
    int64_t prev = min - 1;
    for (size_t i = 0; i < b; ++i) {
      const int64_t bound = histogram[i];
      int64_t bucket_lo = prev + 1;
      const int64_t bucket_hi = bound;
      if (bucket_lo > bucket_hi) bucket_lo = bucket_hi;  // heavy hitter
      const int64_t clip_lo = std::max(lo, bucket_lo);
      const int64_t clip_hi = std::min(hi, bucket_hi);
      if (clip_lo <= clip_hi) {
        const double width =
            static_cast<double>(bucket_hi) - static_cast<double>(bucket_lo) +
            1.0;
        const double overlap = static_cast<double>(clip_hi) -
                               static_cast<double>(clip_lo) + 1.0;
        covered += std::min(1.0, overlap / width);
      }
      prev = std::max(prev, bound);
    }
    return std::clamp(covered / static_cast<double>(b), 0.0, 1.0) *
           (1.0 - null_fraction);
  }
  if (max <= min) return (lo <= min && min <= hi) ? 1.0 - null_fraction : 0.0;
  const double clip_lo = std::max<double>(lo, min);
  const double clip_hi = std::min<double>(hi, max);
  if (clip_lo > clip_hi) return 0.0;
  const double frac = (clip_hi - clip_lo + 1.0) /
                      (static_cast<double>(max) - static_cast<double>(min) +
                       1.0);
  return std::clamp(frac, 0.0, 1.0) * (1.0 - null_fraction);
}

ColumnStats ColumnStats::FromSample(std::vector<int64_t> sample,
                                    uint64_t ndv_hint, int buckets) {
  ColumnStats stats;
  if (sample.empty()) return stats;
  std::sort(sample.begin(), sample.end());
  stats.min = sample.front();
  stats.max = sample.back();
  if (ndv_hint > 0) {
    stats.ndv = ndv_hint;
  } else {
    uint64_t distinct = 1;
    for (size_t i = 1; i < sample.size(); ++i) {
      if (sample[i] != sample[i - 1]) ++distinct;
    }
    stats.ndv = distinct;
  }
  const size_t n = sample.size();
  const int b = std::max(1, std::min<int>(buckets, static_cast<int>(n)));
  stats.histogram.reserve(b);
  for (int i = 1; i <= b; ++i) {
    const size_t idx = std::min(n - 1, (n * static_cast<size_t>(i)) / b - 1);
    // Duplicate bounds are intentional: equal consecutive quantiles mark
    // heavy-hitter values (see RangeSelectivity).
    stats.histogram.push_back(sample[idx]);
  }
  if (stats.histogram.back() < stats.max) {
    stats.histogram.push_back(stats.max);
  }
  return stats;
}

}  // namespace aim::catalog
