#ifndef AIM_CATALOG_TYPES_H_
#define AIM_CATALOG_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace aim::catalog {

using TableId = uint32_t;
using ColumnId = uint32_t;
using IndexId = uint32_t;

inline constexpr TableId kInvalidTable = UINT32_MAX;
inline constexpr IndexId kInvalidIndex = UINT32_MAX;

/// Logical column type. Dates are stored as int64 days-since-epoch.
enum class ColumnType { kInt64, kDouble, kString, kDate };

/// Storage engine flavour; affects cost-model constants (B+Tree = InnoDB
/// style, LSM = MyRocks style).
enum class EngineKind { kBTree, kLsm };

/// A (table, column) pair identifying a column globally.
struct ColumnRef {
  TableId table = kInvalidTable;
  ColumnId column = 0;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  bool operator<(const ColumnRef& o) const {
    if (table != o.table) return table < o.table;
    return column < o.column;
  }
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& r) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(r.table) << 32) | r.column);
  }
};

/// Returns a human-readable name for `type`.
inline const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kDate:
      return "DATE";
  }
  return "?";
}

}  // namespace aim::catalog

#endif  // AIM_CATALOG_TYPES_H_
