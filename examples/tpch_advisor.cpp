// Analytical-benchmark advisor comparison on TPC-H, in the style of the
// paper's Sec. VI-B: AIM vs Extend vs DTA at one storage budget, using
// optimizer-estimated costs over hypothetical indexes.
//
//   $ ./tpch_advisor
#include <cstdio>
#include <memory>

#include "advisors/aim_adapter.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "common/strings.h"
#include "workload/tpch.h"

using namespace aim;

int main() {
  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;  // tiny materialization; stats say SF 10
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "TPC-H build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  advisors::AdvisorOptions options;
  options.storage_budget_bytes = 8.0 * 1024 * 1024 * 1024;  // 8 GB
  options.max_index_width = 4;
  options.time_limit_seconds = 20.0;

  optimizer::WhatIfOptimizer baseline(db.catalog(), optimizer::CostModel());
  const double unindexed =
      advisors::WorkloadCost(w.ValueOrDie(), &baseline).ValueOrDie();
  std::printf("TPC-H (stats at SF 10), budget %s, unindexed cost %.0f\n\n",
              HumanBytes(options.storage_budget_bytes).c_str(), unindexed);
  std::printf("%-10s %10s %12s %10s %12s %8s\n", "advisor", "indexes",
              "size", "rel.cost", "whatif", "runtime");

  std::unique_ptr<advisors::Advisor> algos[] = {
      std::make_unique<advisors::AimAdvisor>(&db),
      std::make_unique<advisors::ExtendAdvisor>(),
      std::make_unique<advisors::DtaAdvisor>(),
  };
  for (auto& algo : algos) {
    optimizer::WhatIfOptimizer what_if(db.catalog(),
                                       optimizer::CostModel());
    Result<advisors::AdvisorResult> r =
        algo->Recommend(w.ValueOrDie(), &what_if, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algo->name().c_str(),
                   r.status().ToString().c_str());
      continue;
    }
    const auto& res = r.ValueOrDie();
    std::printf("%-10s %10zu %12s %9.1f%% %12llu %7.2fs\n",
                algo->name().c_str(), res.indexes.size(),
                HumanBytes(res.total_size_bytes).c_str(),
                100.0 * res.final_workload_cost / unindexed,
                (unsigned long long)res.what_if_calls,
                res.runtime_seconds);
  }

  // Show what AIM actually picked.
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  advisors::AimAdvisor aim(&db);
  Result<advisors::AdvisorResult> r =
      aim.Recommend(w.ValueOrDie(), &what_if, options);
  if (r.ok()) {
    std::printf("\nAIM's configuration:\n");
    for (const auto& def : r.ValueOrDie().indexes) {
      std::printf("  CREATE INDEX ON %s  -- %s\n",
                  db.catalog().DescribeIndex(def).c_str(),
                  HumanBytes(db.catalog().IndexSizeBytes(def)).c_str());
    }
  }
  return 0;
}
