// Quickstart: build a small database, run a workload, let AIM recommend
// indexes, and apply them — the minimal end-to-end loop of Algorithm 1.
//
//   $ ./quickstart
#include <cstdio>

#include "core/aim.h"
#include "executor/executor.h"
#include "storage/data_generator.h"
#include "workload/monitor.h"

using namespace aim;

int main() {
  // 1. Schema: one `accounts` table with a few columns.
  storage::Database db;
  catalog::TableDef def;
  def.name = "accounts";
  auto col = [](const char* name, catalog::ColumnType type, uint32_t w) {
    catalog::ColumnDef c;
    c.name = name;
    c.type = type;
    c.avg_width = w;
    return c;
  };
  def.columns = {col("id", catalog::ColumnType::kInt64, 8),
                 col("region", catalog::ColumnType::kInt64, 4),
                 col("tier", catalog::ColumnType::kInt64, 4),
                 col("balance", catalog::ColumnType::kDouble, 8),
                 col("opened", catalog::ColumnType::kInt64, 8),
                 col("owner", catalog::ColumnType::kString, 20)};
  def.primary_key = {0};
  const catalog::TableId accounts = db.CreateTable(std::move(def));

  // 2. Data: 20k synthetic rows.
  std::vector<storage::ColumnSpec> specs(6);
  specs[1].ndv = 50;                                   // region
  specs[2].ndv = 4;                                    // tier
  specs[3].ndv = 100000;                               // balance
  specs[4].ndv = 20000;                                // opened
  specs[5].ndv = 20000;
  specs[5].string_prefix = "owner";
  Rng rng(1);
  if (Status s = storage::GenerateRows(&db, accounts, 20000, specs, &rng);
      !s.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  db.AnalyzeAll();

  // 3. Workload: the queries the application runs, with weights.
  workload::Workload w;
  (void)w.Add("SELECT id, balance FROM accounts WHERE region = 7", 500.0);
  (void)w.Add(
      "SELECT id FROM accounts WHERE tier = 2 AND opened > 15000", 200.0);
  (void)w.Add("SELECT id FROM accounts ORDER BY opened DESC LIMIT 20",
              100.0);
  (void)w.Add("UPDATE accounts SET balance = 0 WHERE id = 17", 50.0);

  // 4. Observe the workload (the monitor collects cpu / rows read / rows
  //    sent per normalized query — Sec. III-C of the paper).
  workload::WorkloadMonitor monitor;
  executor::Executor exec(&db, optimizer::CostModel());
  double cpu_before = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& q : w.queries) {
      auto r = exec.Execute(q.stmt);
      if (!r.ok()) continue;
      cpu_before += r.ValueOrDie().metrics.cpu_seconds;
      monitor.RecordKeyed(q.fingerprint, q.normalized_sql,
                          r.ValueOrDie().metrics);
    }
  }

  // 5. Run AIM: selects the representative workload, generates candidate
  //    partial orders, ranks them, validates on a clone, applies.
  core::AimOptions options;
  options.selection.min_benefit_cores = 1e-6;
  options.selection.min_executions = 1;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> report = aim.RunOnce(w, &monitor);
  if (!report.ok()) {
    std::fprintf(stderr, "AIM failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("=== AIM recommendations ===\n");
  for (const std::string& text : report.ValueOrDie().explanations) {
    std::printf("%s\n", text.c_str());
  }
  std::printf("what-if optimizer calls: %llu, runtime: %.3fs\n\n",
              (unsigned long long)report.ValueOrDie().stats.what_if_calls,
              report.ValueOrDie().stats.runtime_seconds);

  // 6. Re-run the workload and compare observed CPU.
  double cpu_after = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& q : w.queries) {
      auto r = exec.Execute(q.stmt);
      if (r.ok()) cpu_after += r.ValueOrDie().metrics.cpu_seconds;
    }
  }
  std::printf("workload CPU before: %.4fs  after: %.4fs  (%.1fx faster)\n",
              cpu_before, cpu_after,
              cpu_after > 0 ? cpu_before / cpu_after : 0.0);
  return 0;
}
