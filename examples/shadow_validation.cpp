// MyShadow demo (Sec. VII-B): validate a risky index change on a sampled
// clone before touching production — including catching a change that
// would regress a query.
//
//   $ ./shadow_validation
#include <cstdio>

#include "support/myshadow.h"
#include "workload/demo.h"

using namespace aim;

int main() {
  storage::Database production = workload::MakeUsersDemoDb(20000);

  workload::Workload w;
  (void)w.Add("SELECT id FROM users WHERE org_id = 5", 10.0);
  (void)w.Add("SELECT email FROM users WHERE status = 2 AND score > 900",
              5.0);
  (void)w.Add(
      "UPDATE users SET score = 0 WHERE created_at BETWEEN 100 AND 120",
      20.0);

  // An economical test bed: 25% sample of production.
  support::MyShadow shadow(production, /*sample_fraction=*/0.25);
  std::printf("production rows: %llu, shadow rows: %llu\n",
              (unsigned long long)production.heap(0).live_count(),
              (unsigned long long)shadow.db().heap(0).live_count());

  // Baseline replay on the shadow.
  Result<support::ShadowReplayResult> before_r =
      shadow.Replay(w, optimizer::CostModel(), /*repetitions=*/5);
  if (!before_r.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 before_r.status().ToString().c_str());
    return 1;
  }
  support::ShadowReplayResult before = before_r.MoveValue();
  std::printf("baseline: %.5f CPU-s over %zu executions\n",
              before.total_cpu_seconds, before.executed);

  // Proposed change: two candidate indexes, one useful, one that only
  // adds write amplification.
  catalog::IndexDef useful;
  useful.table = 0;
  useful.columns = {1};  // org_id
  catalog::IndexDef write_burden;
  write_burden.table = 0;
  write_burden.columns = {3, 4, 5};  // score, created_at, email
  if (Status s = shadow.Materialize({useful, write_burden}); !s.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Result<support::ShadowReplayResult> after_r =
      shadow.Replay(w, optimizer::CostModel(), /*repetitions=*/5);
  if (!after_r.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 after_r.status().ToString().c_str());
    return 1;
  }
  support::ShadowReplayResult after = after_r.MoveValue();
  std::printf("with candidates: %.5f CPU-s\n", after.total_cpu_seconds);

  // Per-query verdicts: the UPDATE pays maintenance on the wide index.
  std::printf("\n%-55s %12s %12s\n", "query", "cpu before", "cpu after");
  for (const auto& q : w.queries) {
    const workload::QueryStats* b = before.monitor.Find(q.fingerprint);
    const workload::QueryStats* a = after.monitor.Find(q.fingerprint);
    if (b == nullptr || a == nullptr) continue;
    std::printf("%-55.55s %12.6f %12.6f %s\n", q.normalized_sql.c_str(),
                b->cpu_avg(), a->cpu_avg(),
                a->cpu_avg() > 1.2 * b->cpu_avg() ? "<-- REGRESSION"
                                                  : "");
  }
  std::printf("\nproduction untouched: %zu indexes\n",
              production.catalog().AllIndexes(false, false).size());
  return 0;
}
