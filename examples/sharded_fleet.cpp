// Sharded-fleet demo (Sec. VIII-b): one logical database horizontally
// partitioned into shards that must share a physical design. Shows how
// the economics change — a query hot on one shard pays storage on every
// shard — and how per-shard validation guards the fleet.
//
//   $ ./sharded_fleet
#include <cstdio>

#include "common/strings.h"
#include "core/sharding.h"
#include "executor/executor.h"
#include "workload/demo.h"

using namespace aim;

int main() {
  constexpr int kShards = 4;
  std::vector<storage::Database> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(workload::MakeUsersDemoDb(4000, 200 + i));
  }

  workload::Workload w;
  (void)w.Add("SELECT id FROM users WHERE org_id = 5", 1.0);
  (void)w.Add("SELECT email FROM users WHERE created_at = 999", 1.0);

  // Traffic is skewed: shard 0 serves most of the org lookups, the
  // created_at lookup runs everywhere.
  std::vector<workload::WorkloadMonitor> monitors(kShards);
  for (int s = 0; s < kShards; ++s) {
    executor::Executor exec(&shards[s], optimizer::CostModel());
    const int org_reps = s == 0 ? 60 : 4;
    for (int i = 0; i < org_reps; ++i) {
      auto r = exec.Execute(w.queries[0].stmt);
      if (r.ok()) {
        monitors[s].RecordKeyed(w.queries[0].fingerprint,
                                w.queries[0].normalized_sql,
                                r.ValueOrDie().metrics);
      }
    }
    for (int i = 0; i < 15; ++i) {
      auto r = exec.Execute(w.queries[1].stmt);
      if (r.ok()) {
        monitors[s].RecordKeyed(w.queries[1].fingerprint,
                                w.queries[1].normalized_sql,
                                r.ValueOrDie().metrics);
      }
    }
  }

  std::vector<core::Shard> fleet;
  for (int s = 0; s < kShards; ++s) {
    fleet.push_back(core::Shard{&shards[s], &monitors[s]});
  }

  core::ShardedOptions options;
  options.comprehensive_validation = true;  // performance-sensitive DB
  options.aim.selection.min_benefit_cores = 1e-9;
  options.aim.selection.min_executions = 1;
  core::ShardedIndexManager manager(options);
  Result<core::ShardedReport> report =
      manager.RunOnce(w, fleet, optimizer::CostModel());
  if (!report.ok()) {
    std::fprintf(stderr, "sharded tuning failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("fleet of %d shards, common physical design:\n", kShards);
  for (const auto& c : report.ValueOrDie().aim.recommended) {
    std::printf("  + %s  (%s per shard, %s fleet-wide)\n",
                shards[0].catalog().DescribeIndex(c.def).c_str(),
                HumanBytes(c.size_bytes).c_str(),
                HumanBytes(c.size_bytes * kShards).c_str());
  }
  for (const auto& rejected : report.ValueOrDie().rejected_by_shards) {
    std::printf("  - rejected by shard validation: %s\n",
                shards[0].catalog().DescribeIndex(rejected.def).c_str());
  }
  std::printf("validated on %zu shard clones before touching the fleet\n",
              report.ValueOrDie().validations.size());

  // Every shard now carries the same secondary indexes.
  for (int s = 0; s < kShards; ++s) {
    std::printf("shard %d secondary indexes: %zu\n", s,
                shards[s].catalog().AllIndexes(false, false).size());
  }
  return 0;
}
