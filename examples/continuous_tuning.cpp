// Continuous tuning demo: a drifting OLTP workload tuned interval by
// interval. Shows the full production loop from the paper:
//   replicas -> stats export (Sec. VII-A) -> AIM (Sec. III) ->
//   unused-index GC (Sec. VI-D) -> regression detection (Sec. VII-C).
//
//   $ ./continuous_tuning
//
// Set AIM_TRACE=/path/to/trace.json to record a Chrome trace_event file
// of every interval (open it in about:tracing or ui.perfetto.dev), and
// AIM_METRICS=/path/to/metrics.json to dump the final metrics registry.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/continuous.h"
#include "executor/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/regression_detector.h"
#include "support/stats_exporter.h"
#include "workload/demo.h"

using namespace aim;

namespace {

workload::Workload PhaseWorkload(int phase) {
  workload::Workload w;
  if (phase == 0) {
    // Phase 0: lookups by org.
    (void)w.Add("SELECT id FROM users WHERE org_id = 5", 200.0);
    (void)w.Add("SELECT id FROM users WHERE org_id = 9 AND status = 1",
                100.0);
  } else {
    // Phase 1: a new code push changed the access pattern.
    (void)w.Add("SELECT id FROM users WHERE created_at = 123", 250.0);
    (void)w.Add("SELECT email FROM users WHERE score = 77", 120.0);
  }
  (void)w.Add("UPDATE users SET score = 1 WHERE id = 3", 50.0);
  return w;
}

}  // namespace

int main() {
  const char* trace_path = std::getenv("AIM_TRACE");
  obs::Tracer tracer;
  if (trace_path != nullptr) obs::Tracer::Install(&tracer);

  storage::Database db = workload::MakeUsersDemoDb(10000);

  // Two replicas feed the export pipeline; AIM consumes the aggregate.
  workload::WorkloadMonitor replica_a;
  workload::WorkloadMonitor replica_b;
  support::StatsExporter exporter;
  exporter.RegisterReplica("replica-a", &replica_a);
  exporter.RegisterReplica("replica-b", &replica_b);

  support::RegressionDetector detector;

  core::ContinuousTunerOptions options;
  options.drop_after_idle_intervals = 2;
  options.aim.selection.min_benefit_cores = 1e-6;
  options.aim.selection.min_executions = 1;
  core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  executor::Executor exec(&db, optimizer::CostModel());
  for (int interval = 0; interval < 8; ++interval) {
    const int phase = interval < 4 ? 0 : 1;
    workload::Workload w = PhaseWorkload(phase);

    // Both replicas serve the interval's traffic.
    for (workload::WorkloadMonitor* replica : {&replica_a, &replica_b}) {
      for (int rep = 0; rep < 10; ++rep) {
        for (const auto& q : w.queries) {
          auto r = exec.Execute(q.stmt);
          if (r.ok()) {
            replica->RecordKeyed(q.fingerprint, q.normalized_sql,
                                 r.ValueOrDie().metrics);
          }
        }
      }
    }
    if (!exporter.ExportInterval().ok()) continue;  // retried next interval

    // Off-host regression watch over the aggregated stats.
    std::vector<std::pair<catalog::IndexId, catalog::TableId>> automation;
    for (const auto* idx : db.catalog().AllIndexes(false, false)) {
      if (idx->created_by_automation) {
        automation.emplace_back(idx->id, idx->table);
      }
    }
    auto regressions =
        detector.Observe(exporter.aggregate().Snapshot(), automation);
    for (const auto& r : regressions) {
      std::printf("  !! regression detected (%.1fx) on query %llx\n",
                  r.ratio, (unsigned long long)r.fingerprint);
    }

    // Periodic AIM run on the aggregated statistics.
    Result<core::IntervalReport> report =
        tuner.Tick(w, exporter.mutable_aggregate());
    if (!report.ok()) {
      std::fprintf(stderr, "tick failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("interval %d (phase %d): +%zu indexes, -%zu dropped, "
                "%zu shrunk\n",
                interval, phase,
                report.ValueOrDie().aim.recommended.size(),
                report.ValueOrDie().dropped.size(),
                report.ValueOrDie().shrunk.size());
    for (const auto& c : report.ValueOrDie().aim.recommended) {
      std::printf("    + %s\n",
                  db.catalog().DescribeIndex(c.def).c_str());
    }
    for (const auto& d : report.ValueOrDie().dropped) {
      std::printf("    - %s (unused)\n",
                  db.catalog().DescribeIndex(d).c_str());
    }
  }

  std::printf("\nfinal physical design:\n");
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    std::printf("  %s%s\n", db.catalog().DescribeIndex(*idx).c_str(),
                idx->created_by_automation ? "  [automation]" : "");
  }

  if (trace_path != nullptr) {
    obs::Tracer::Install(nullptr);
    std::ofstream out(trace_path, std::ios::trunc);
    Status st = out ? tracer.WriteChromeTrace(out)
                    : Status::Internal("cannot open trace file");
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote Chrome trace (%zu events) to %s\n",
                tracer.event_count(), trace_path);
  }
  if (const char* metrics_path = std::getenv("AIM_METRICS")) {
    std::ofstream out(metrics_path, std::ios::trunc);
    obs::MetricsRegistry::Global()->WriteJson(out);
    out << "\n";
    std::printf("wrote metrics to %s\n", metrics_path);
  }
  return 0;
}
