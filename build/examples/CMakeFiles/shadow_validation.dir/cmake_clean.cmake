file(REMOVE_RECURSE
  "CMakeFiles/shadow_validation.dir/shadow_validation.cpp.o"
  "CMakeFiles/shadow_validation.dir/shadow_validation.cpp.o.d"
  "shadow_validation"
  "shadow_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
