# Empty dependencies file for shadow_validation.
# This may be replaced when dependencies are built.
