# Empty compiler generated dependencies file for continuous_tuning.
# This may be replaced when dependencies are built.
