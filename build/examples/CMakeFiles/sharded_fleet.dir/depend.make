# Empty dependencies file for sharded_fleet.
# This may be replaced when dependencies are built.
