file(REMOVE_RECURSE
  "CMakeFiles/sharded_fleet.dir/sharded_fleet.cpp.o"
  "CMakeFiles/sharded_fleet.dir/sharded_fleet.cpp.o.d"
  "sharded_fleet"
  "sharded_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
