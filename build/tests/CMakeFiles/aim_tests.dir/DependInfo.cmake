
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisors_test.cc" "tests/CMakeFiles/aim_tests.dir/advisors_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/advisors_test.cc.o.d"
  "/root/repo/tests/aim_test.cc" "tests/CMakeFiles/aim_tests.dir/aim_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/aim_test.cc.o.d"
  "/root/repo/tests/candidate_generation_test.cc" "tests/CMakeFiles/aim_tests.dir/candidate_generation_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/candidate_generation_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/aim_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/aim_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/equations_test.cc" "tests/CMakeFiles/aim_tests.dir/equations_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/equations_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/aim_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/index_merge_test.cc" "tests/CMakeFiles/aim_tests.dir/index_merge_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/index_merge_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/aim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/model_based_test.cc" "tests/CMakeFiles/aim_tests.dir/model_based_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/model_based_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/aim_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/partial_order_test.cc" "tests/CMakeFiles/aim_tests.dir/partial_order_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/partial_order_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/aim_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/ranking_test.cc" "tests/CMakeFiles/aim_tests.dir/ranking_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/ranking_test.cc.o.d"
  "/root/repo/tests/relaxation_test.cc" "tests/CMakeFiles/aim_tests.dir/relaxation_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/relaxation_test.cc.o.d"
  "/root/repo/tests/sharding_test.cc" "tests/CMakeFiles/aim_tests.dir/sharding_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/sharding_test.cc.o.d"
  "/root/repo/tests/skip_scan_test.cc" "tests/CMakeFiles/aim_tests.dir/skip_scan_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/skip_scan_test.cc.o.d"
  "/root/repo/tests/spec_test.cc" "tests/CMakeFiles/aim_tests.dir/spec_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/spec_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/aim_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/aim_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/aim_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/aim_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/aim_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
