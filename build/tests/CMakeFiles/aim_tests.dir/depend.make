# Empty dependencies file for aim_tests.
# This may be replaced when dependencies are built.
