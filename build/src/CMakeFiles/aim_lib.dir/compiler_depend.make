# Empty compiler generated dependencies file for aim_lib.
# This may be replaced when dependencies are built.
