file(REMOVE_RECURSE
  "libaim_lib.a"
)
