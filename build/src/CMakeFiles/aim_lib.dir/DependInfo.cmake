
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisors/advisor.cc" "src/CMakeFiles/aim_lib.dir/advisors/advisor.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/advisor.cc.o.d"
  "/root/repo/src/advisors/aim_adapter.cc" "src/CMakeFiles/aim_lib.dir/advisors/aim_adapter.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/aim_adapter.cc.o.d"
  "/root/repo/src/advisors/autoadmin.cc" "src/CMakeFiles/aim_lib.dir/advisors/autoadmin.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/autoadmin.cc.o.d"
  "/root/repo/src/advisors/db2advis.cc" "src/CMakeFiles/aim_lib.dir/advisors/db2advis.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/db2advis.cc.o.d"
  "/root/repo/src/advisors/drop.cc" "src/CMakeFiles/aim_lib.dir/advisors/drop.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/drop.cc.o.d"
  "/root/repo/src/advisors/dta.cc" "src/CMakeFiles/aim_lib.dir/advisors/dta.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/dta.cc.o.d"
  "/root/repo/src/advisors/extend.cc" "src/CMakeFiles/aim_lib.dir/advisors/extend.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/extend.cc.o.d"
  "/root/repo/src/advisors/relaxation.cc" "src/CMakeFiles/aim_lib.dir/advisors/relaxation.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/advisors/relaxation.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/aim_lib.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/aim_lib.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/catalog/statistics.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/aim_lib.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/aim_lib.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/common/rng.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/aim_lib.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/common/strings.cc.o.d"
  "/root/repo/src/core/aim.cc" "src/CMakeFiles/aim_lib.dir/core/aim.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/aim.cc.o.d"
  "/root/repo/src/core/candidate_generation.cc" "src/CMakeFiles/aim_lib.dir/core/candidate_generation.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/candidate_generation.cc.o.d"
  "/root/repo/src/core/clone_validation.cc" "src/CMakeFiles/aim_lib.dir/core/clone_validation.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/clone_validation.cc.o.d"
  "/root/repo/src/core/continuous.cc" "src/CMakeFiles/aim_lib.dir/core/continuous.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/continuous.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/aim_lib.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/explain.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/CMakeFiles/aim_lib.dir/core/merge.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/merge.cc.o.d"
  "/root/repo/src/core/partial_order.cc" "src/CMakeFiles/aim_lib.dir/core/partial_order.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/partial_order.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/CMakeFiles/aim_lib.dir/core/ranking.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/ranking.cc.o.d"
  "/root/repo/src/core/sharding.cc" "src/CMakeFiles/aim_lib.dir/core/sharding.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/sharding.cc.o.d"
  "/root/repo/src/core/workload_selection.cc" "src/CMakeFiles/aim_lib.dir/core/workload_selection.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/core/workload_selection.cc.o.d"
  "/root/repo/src/executor/executor.cc" "src/CMakeFiles/aim_lib.dir/executor/executor.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/executor/executor.cc.o.d"
  "/root/repo/src/optimizer/access_path.cc" "src/CMakeFiles/aim_lib.dir/optimizer/access_path.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/access_path.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/aim_lib.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/join_order.cc" "src/CMakeFiles/aim_lib.dir/optimizer/join_order.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/join_order.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/aim_lib.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/predicate.cc" "src/CMakeFiles/aim_lib.dir/optimizer/predicate.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/predicate.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/CMakeFiles/aim_lib.dir/optimizer/selectivity.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/selectivity.cc.o.d"
  "/root/repo/src/optimizer/what_if.cc" "src/CMakeFiles/aim_lib.dir/optimizer/what_if.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/optimizer/what_if.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/aim_lib.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/normalizer.cc" "src/CMakeFiles/aim_lib.dir/sql/normalizer.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/sql/normalizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/aim_lib.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/CMakeFiles/aim_lib.dir/sql/printer.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/sql/printer.cc.o.d"
  "/root/repo/src/storage/btree_index.cc" "src/CMakeFiles/aim_lib.dir/storage/btree_index.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/storage/btree_index.cc.o.d"
  "/root/repo/src/storage/data_generator.cc" "src/CMakeFiles/aim_lib.dir/storage/data_generator.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/storage/data_generator.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/aim_lib.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/CMakeFiles/aim_lib.dir/storage/heap_table.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/support/myshadow.cc" "src/CMakeFiles/aim_lib.dir/support/myshadow.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/support/myshadow.cc.o.d"
  "/root/repo/src/support/regression_detector.cc" "src/CMakeFiles/aim_lib.dir/support/regression_detector.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/support/regression_detector.cc.o.d"
  "/root/repo/src/support/stats_exporter.cc" "src/CMakeFiles/aim_lib.dir/support/stats_exporter.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/support/stats_exporter.cc.o.d"
  "/root/repo/src/workload/demo.cc" "src/CMakeFiles/aim_lib.dir/workload/demo.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/demo.cc.o.d"
  "/root/repo/src/workload/job.cc" "src/CMakeFiles/aim_lib.dir/workload/job.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/job.cc.o.d"
  "/root/repo/src/workload/monitor.cc" "src/CMakeFiles/aim_lib.dir/workload/monitor.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/monitor.cc.o.d"
  "/root/repo/src/workload/products.cc" "src/CMakeFiles/aim_lib.dir/workload/products.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/products.cc.o.d"
  "/root/repo/src/workload/replay.cc" "src/CMakeFiles/aim_lib.dir/workload/replay.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/replay.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/aim_lib.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/spec.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/aim_lib.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/tpch.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/aim_lib.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/aim_lib.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
