# Empty dependencies file for aim_cli.
# This may be replaced when dependencies are built.
