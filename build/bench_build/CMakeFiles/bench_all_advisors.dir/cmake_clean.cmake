file(REMOVE_RECURSE
  "../bench/bench_all_advisors"
  "../bench/bench_all_advisors.pdb"
  "CMakeFiles/bench_all_advisors.dir/bench_all_advisors.cpp.o"
  "CMakeFiles/bench_all_advisors.dir/bench_all_advisors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_advisors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
