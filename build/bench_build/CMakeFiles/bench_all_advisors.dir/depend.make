# Empty dependencies file for bench_all_advisors.
# This may be replaced when dependencies are built.
