file(REMOVE_RECURSE
  "../bench/bench_fig4_tpch"
  "../bench/bench_fig4_tpch.pdb"
  "CMakeFiles/bench_fig4_tpch.dir/bench_fig4_tpch.cpp.o"
  "CMakeFiles/bench_fig4_tpch.dir/bench_fig4_tpch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
