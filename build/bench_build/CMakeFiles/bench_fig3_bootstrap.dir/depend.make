# Empty dependencies file for bench_fig3_bootstrap.
# This may be replaced when dependencies are built.
