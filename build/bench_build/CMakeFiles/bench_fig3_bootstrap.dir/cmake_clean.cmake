file(REMOVE_RECURSE
  "../bench/bench_fig3_bootstrap"
  "../bench/bench_fig3_bootstrap.pdb"
  "CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cpp.o"
  "CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
