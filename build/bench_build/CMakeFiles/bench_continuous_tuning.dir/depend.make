# Empty dependencies file for bench_continuous_tuning.
# This may be replaced when dependencies are built.
