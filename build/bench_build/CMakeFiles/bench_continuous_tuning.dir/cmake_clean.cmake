file(REMOVE_RECURSE
  "../bench/bench_continuous_tuning"
  "../bench/bench_continuous_tuning.pdb"
  "CMakeFiles/bench_continuous_tuning.dir/bench_continuous_tuning.cpp.o"
  "CMakeFiles/bench_continuous_tuning.dir/bench_continuous_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_continuous_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
