file(REMOVE_RECURSE
  "../bench/bench_table2_products"
  "../bench/bench_table2_products.pdb"
  "CMakeFiles/bench_table2_products.dir/bench_table2_products.cpp.o"
  "CMakeFiles/bench_table2_products.dir/bench_table2_products.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
