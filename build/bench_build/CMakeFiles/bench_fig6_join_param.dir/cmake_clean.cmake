file(REMOVE_RECURSE
  "../bench/bench_fig6_join_param"
  "../bench/bench_fig6_join_param.pdb"
  "CMakeFiles/bench_fig6_join_param.dir/bench_fig6_join_param.cpp.o"
  "CMakeFiles/bench_fig6_join_param.dir/bench_fig6_join_param.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_join_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
