# Empty compiler generated dependencies file for bench_fig6_join_param.
# This may be replaced when dependencies are built.
