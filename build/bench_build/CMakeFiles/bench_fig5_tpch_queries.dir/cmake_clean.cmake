file(REMOVE_RECURSE
  "../bench/bench_fig5_tpch_queries"
  "../bench/bench_fig5_tpch_queries.pdb"
  "CMakeFiles/bench_fig5_tpch_queries.dir/bench_fig5_tpch_queries.cpp.o"
  "CMakeFiles/bench_fig5_tpch_queries.dir/bench_fig5_tpch_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tpch_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
