# Empty dependencies file for bench_fig5_tpch_queries.
# This may be replaced when dependencies are built.
