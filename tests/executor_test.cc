#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "executor/executor.h"
#include "tests/test_util.h"

namespace aim::executor {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;
using aim::testing::MustParse;
using sql::Value;

ExecuteResult MustExecute(storage::Database* db, const std::string& sql) {
  Executor exec(db, optimizer::CostModel());
  Result<ExecuteResult> r = exec.Execute(MustParse(sql));
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " sql=" << sql;
  return r.ok() ? r.MoveValue() : ExecuteResult{};
}

/// Brute-force row count matching a simple predicate on `users`.
uint64_t CountWhere(const storage::Database& db,
                    const std::function<bool(const storage::Row&)>& pred) {
  uint64_t n = 0;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (pred(row)) ++n;
    return true;
  });
  return n;
}

catalog::IndexId AddIndex(storage::Database* db,
                          std::vector<catalog::ColumnId> cols,
                          catalog::TableId table = 0) {
  catalog::IndexDef def;
  def.table = table;
  def.columns = std::move(cols);
  return db->CreateIndex(def).ValueOrDie();
}

TEST(ExecutorTest, ScanMatchesBruteForce) {
  storage::Database db = MakeUsersDb(2000);
  ExecuteResult r = MustExecute(&db, "SELECT id FROM users WHERE org_id = 7");
  const uint64_t expected = CountWhere(
      db, [](const storage::Row& row) { return row[1].AsInt() == 7; });
  EXPECT_EQ(r.rows.size(), expected);
  EXPECT_EQ(r.metrics.rows_sent, expected);
  EXPECT_EQ(r.metrics.rows_examined, 2000u);
}

TEST(ExecutorTest, IndexScanSameResultLessWork) {
  storage::Database db = MakeUsersDb(2000);
  const ExecuteResult scan =
      MustExecute(&db, "SELECT id FROM users WHERE org_id = 7");
  AddIndex(&db, {1});
  const ExecuteResult indexed =
      MustExecute(&db, "SELECT id FROM users WHERE org_id = 7");
  EXPECT_EQ(indexed.rows.size(), scan.rows.size());
  EXPECT_LT(indexed.metrics.rows_examined, scan.metrics.rows_examined);
  EXPECT_LT(indexed.metrics.cpu_seconds, scan.metrics.cpu_seconds);
  ASSERT_EQ(indexed.metrics.used_indexes.size(), 1u);
}

TEST(ExecutorTest, RangePredicateViaIndex) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {2, 4});  // (status, created_at)
  ExecuteResult r = MustExecute(
      &db,
      "SELECT id FROM users WHERE status = 1 AND created_at > 1500");
  const uint64_t expected =
      CountWhere(db, [](const storage::Row& row) {
        return row[2].AsInt() == 1 && row[4].AsInt() > 1500;
      });
  EXPECT_EQ(r.rows.size(), expected);
  EXPECT_LT(r.metrics.rows_examined, 2000u);
}

TEST(ExecutorTest, InListExpandsRanges) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {1});
  ExecuteResult r = MustExecute(
      &db, "SELECT id FROM users WHERE org_id IN (3, 5, 9)");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    const int64_t v = row[1].AsInt();
    return v == 3 || v == 5 || v == 9;
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, BetweenInclusive) {
  storage::Database db = MakeUsersDb(500);
  ExecuteResult r = MustExecute(
      &db, "SELECT id FROM users WHERE created_at BETWEEN 100 AND 200");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    return row[4].AsInt() >= 100 && row[4].AsInt() <= 200;
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, LikePrefix) {
  storage::Database db = MakeUsersDb(500);
  ExecuteResult r =
      MustExecute(&db, "SELECT id FROM users WHERE email LIKE 'user1%'");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    return row[5].AsString().rfind("user1", 0) == 0;
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, LikeGeneralPattern) {
  storage::Database db = MakeUsersDb(200);
  ExecuteResult r =
      MustExecute(&db, "SELECT id FROM users WHERE email LIKE '%7'");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    const std::string& s = row[5].AsString();
    return !s.empty() && s.back() == '7';
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, OrPredicate) {
  storage::Database db = MakeUsersDb(1000);
  ExecuteResult r = MustExecute(
      &db,
      "SELECT id FROM users WHERE (org_id = 3 AND status = 1) OR "
      "(org_id = 5 AND status = 2)");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    return (row[1].AsInt() == 3 && row[2].AsInt() == 1) ||
           (row[1].AsInt() == 5 && row[2].AsInt() == 2);
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, NotPredicate) {
  storage::Database db = MakeUsersDb(300);
  ExecuteResult r = MustExecute(
      &db, "SELECT id FROM users WHERE NOT (status = 1)");
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    return row[2].AsInt() != 1;
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, OrderByAscDesc) {
  storage::Database db = MakeUsersDb(300);
  ExecuteResult asc = MustExecute(
      &db, "SELECT created_at FROM users ORDER BY created_at");
  ASSERT_FALSE(asc.rows.empty());
  for (size_t i = 1; i < asc.rows.size(); ++i) {
    EXPECT_LE(asc.rows[i - 1][0].AsInt(), asc.rows[i][0].AsInt());
  }
  ExecuteResult desc = MustExecute(
      &db, "SELECT created_at FROM users ORDER BY created_at DESC");
  for (size_t i = 1; i < desc.rows.size(); ++i) {
    EXPECT_GE(desc.rows[i - 1][0].AsInt(), desc.rows[i][0].AsInt());
  }
}

TEST(ExecutorTest, OrderViaIndexSkipsSort) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {4});
  ExecuteResult r = MustExecute(
      &db, "SELECT created_at FROM users ORDER BY created_at LIMIT 20");
  ASSERT_EQ(r.rows.size(), 20u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][0].AsInt(), r.rows[i][0].AsInt());
  }
  EXPECT_EQ(r.metrics.rows_sorted, 0u);
  // Early termination: far fewer than 2000 rows examined.
  EXPECT_LT(r.metrics.rows_examined, 200u);
}

TEST(ExecutorTest, LimitWithoutOrder) {
  storage::Database db = MakeUsersDb(500);
  ExecuteResult r = MustExecute(&db, "SELECT id FROM users LIMIT 7");
  EXPECT_EQ(r.rows.size(), 7u);
  EXPECT_LT(r.metrics.rows_examined, 500u);
}

TEST(ExecutorTest, GroupByCounts) {
  storage::Database db = MakeUsersDb(1000);
  ExecuteResult r = MustExecute(
      &db, "SELECT status, COUNT(*) FROM users GROUP BY status");
  uint64_t total = 0;
  std::set<int64_t> seen;
  for (const auto& row : r.rows) {
    EXPECT_TRUE(seen.insert(row[0].AsInt()).second);
    total += static_cast<uint64_t>(row[1].AsInt());
  }
  EXPECT_EQ(total, 1000u);
}

TEST(ExecutorTest, GroupByWithFilterAndSum) {
  storage::Database db = MakeUsersDb(1000);
  ExecuteResult r = MustExecute(
      &db,
      "SELECT status, SUM(score) FROM users WHERE org_id = 3 GROUP BY "
      "status");
  // Verify per-group sums against brute force.
  std::map<int64_t, double> expected;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (row[1].AsInt() == 3) {
      expected[row[2].AsInt()] += static_cast<double>(row[3].AsInt());
    }
    return true;
  });
  EXPECT_EQ(r.rows.size(), expected.size());
  for (const auto& row : r.rows) {
    EXPECT_NEAR(row[1].AsDouble(), expected[row[0].AsInt()], 1e-6);
  }
}

TEST(ExecutorTest, AggregatesMinMaxAvg) {
  storage::Database db = MakeUsersDb(500);
  ExecuteResult r = MustExecute(
      &db, "SELECT MIN(score), MAX(score), AVG(score), COUNT(*) FROM "
           "users WHERE status = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  int64_t mn = INT64_MAX;
  int64_t mx = INT64_MIN;
  double sum = 0;
  uint64_t count = 0;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (row[2].AsInt() == 2) {
      mn = std::min(mn, row[3].AsInt());
      mx = std::max(mx, row[3].AsInt());
      sum += static_cast<double>(row[3].AsInt());
      ++count;
    }
    return true;
  });
  ASSERT_GT(count, 0u);
  EXPECT_EQ(r.rows[0][0].AsInt(), mn);
  EXPECT_EQ(r.rows[0][1].AsInt(), mx);
  EXPECT_NEAR(r.rows[0][2].AsDouble(), sum / count, 1e-6);
  EXPECT_EQ(r.rows[0][3].AsInt(), static_cast<int64_t>(count));
}

TEST(ExecutorTest, JoinMatchesBruteForce) {
  storage::Database db = MakeOrdersDb(200, 1000);
  ExecuteResult r = MustExecute(
      &db,
      "SELECT users.id FROM users, orders WHERE users.id = "
      "orders.user_id AND orders.status = 2");
  // Brute force.
  uint64_t expected = 0;
  db.heap(1).Scan([&](storage::RowId, const storage::Row& order) {
    if (order[2].AsInt() != 2) return true;
    db.heap(0).Scan([&](storage::RowId, const storage::Row& user) {
      if (user[0].AsInt() == order[1].AsInt()) ++expected;
      return true;
    });
    return true;
  });
  EXPECT_EQ(r.rows.size(), expected);
}

TEST(ExecutorTest, JoinWithIndexSameResult) {
  storage::Database db = MakeOrdersDb(200, 1000);
  const ExecuteResult before = MustExecute(
      &db,
      "SELECT users.id FROM users, orders WHERE users.id = "
      "orders.user_id AND users.org_id = 5");
  AddIndex(&db, {1}, 1);  // orders(user_id)
  const ExecuteResult after = MustExecute(
      &db,
      "SELECT users.id FROM users, orders WHERE users.id = "
      "orders.user_id AND users.org_id = 5");
  EXPECT_EQ(before.rows.size(), after.rows.size());
  EXPECT_LE(after.metrics.rows_examined, before.metrics.rows_examined);
}

TEST(ExecutorTest, SelectStarWidth) {
  storage::Database db = MakeUsersDb(50);
  ExecuteResult r = MustExecute(&db, "SELECT * FROM users WHERE id = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 7u);
}

TEST(ExecutorTest, InsertAddsRow) {
  storage::Database db = MakeUsersDb(100);
  ExecuteResult r = MustExecute(
      &db,
      "INSERT INTO users (id, org_id, status, score, created_at, email, "
      "payload) VALUES (50000, 1, 2, 3, 4, 'new', 'p')");
  EXPECT_EQ(r.metrics.rows_modified, 1u);
  EXPECT_EQ(db.heap(0).live_count(), 101u);
}

TEST(ExecutorTest, UpdateChangesMatchingRows) {
  storage::Database db = MakeUsersDb(200);
  ExecuteResult r = MustExecute(
      &db, "UPDATE users SET score = 12345 WHERE org_id = 9");
  const uint64_t updated = CountWhere(db, [](const storage::Row& row) {
    return row[3].AsInt() == 12345;
  });
  EXPECT_EQ(r.metrics.rows_modified, updated);
  EXPECT_GT(updated, 0u);
}

TEST(ExecutorTest, UpdateMaintainsIndexes) {
  storage::Database db = MakeUsersDb(200);
  catalog::IndexId idx = AddIndex(&db, {3});  // score
  MustExecute(&db, "UPDATE users SET score = 777777 WHERE org_id = 3");
  // The index must now find the new values.
  uint64_t via_index = 0;
  db.btree(idx)->ScanPrefix({Value::Int(777777)}, std::nullopt,
                            std::nullopt,
                            [&](const storage::Row&, storage::RowId) {
                              ++via_index;
                              return true;
                            });
  const uint64_t expected = CountWhere(db, [](const storage::Row& row) {
    return row[3].AsInt() == 777777;
  });
  EXPECT_EQ(via_index, expected);
  EXPECT_GT(expected, 0u);
}

TEST(ExecutorTest, DeleteRemovesRows) {
  storage::Database db = MakeUsersDb(300);
  const uint64_t before = db.heap(0).live_count();
  ExecuteResult r =
      MustExecute(&db, "DELETE FROM users WHERE status = 4");
  EXPECT_EQ(db.heap(0).live_count(), before - r.metrics.rows_modified);
  EXPECT_EQ(CountWhere(db, [](const storage::Row& row) {
              return row[2].AsInt() == 4;
            }),
            0u);
}

TEST(ExecutorTest, DeleteViaIndexPath) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {1});
  ExecuteResult r =
      MustExecute(&db, "DELETE FROM users WHERE org_id = 11");
  EXPECT_GT(r.metrics.rows_modified, 0u);
  EXPECT_LT(r.metrics.rows_examined, 2000u);
  EXPECT_EQ(CountWhere(db, [](const storage::Row& row) {
              return row[1].AsInt() == 11;
            }),
            0u);
}

TEST(ExecutorTest, MetricsSentToReadRatio) {
  storage::Database db = MakeUsersDb(1000);
  ExecuteResult selective =
      MustExecute(&db, "SELECT id FROM users WHERE created_at = 17");
  // Full scan for ~1 row: ddr ingredient near 0.
  EXPECT_LT(selective.metrics.SentToReadRatio(), 0.01);
  ExecuteResult all = MustExecute(&db, "SELECT id FROM users");
  EXPECT_NEAR(all.metrics.SentToReadRatio(), 1.0, 1e-9);
}

TEST(ExecutorTest, CoveringQueryDoesNoPkLookups) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {1, 2});
  ExecuteResult r = MustExecute(
      &db, "SELECT status FROM users WHERE org_id = 5");
  EXPECT_EQ(r.metrics.pk_lookups, 0u);
  ExecuteResult fetch = MustExecute(
      &db, "SELECT email FROM users WHERE org_id = 5");
  EXPECT_GT(fetch.metrics.pk_lookups, 0u);
}

TEST(ExecutorTest, ParameterizedStatementYieldsNoRows) {
  // Executor requires literals; a parameterized predicate evaluates to
  // unknown and matches nothing (documented behaviour).
  storage::Database db = MakeUsersDb(50);
  ExecuteResult r =
      MustExecute(&db, "SELECT id FROM users WHERE org_id = ?");
  EXPECT_EQ(r.rows.size(), 0u);
}

}  // namespace
}  // namespace aim::executor
