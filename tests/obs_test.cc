// aim::obs unit + integration coverage, and the trace-file fixture for
// tools/trace_check.py.
//
// Run with `ctest -L tracing` (and under TSan: AIM_SANITIZE=thread — the
// cache-stats hammer below is the WhatIfCache stats regression test).
//
// TraceExportTest doubles as the Chrome-trace generator: when
// AIM_TRACE_OUT is set (the ctest fixture sets it to
// <build>/obs_trace.json) it writes the full-pipeline trace that the
// trace_check.py test then validates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/aim.h"
#include "core/continuous.h"
#include "core/sharding.h"
#include "executor/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/what_if_cache.h"
#include "storage/online_index_builder.h"
#include "tests/test_util.h"

namespace aim::obs {
namespace {

using aim::testing::MakeUsersDb;

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.Set(2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  Histogram h;
  h.Observe(1e-3);
  h.Observe(3e-3);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 4e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 2e-3);
  // Both observations land in finite buckets and total counts agree.
  uint64_t bucketed = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    bucketed += h.bucket_count(i);
  }
  EXPECT_EQ(bucketed, 2u);
}

TEST(MetricsTest, RegistryPointersStableAcrossResetAll) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  Counter* c = reg->counter("obs_test.stable");
  EXPECT_EQ(c, reg->counter("obs_test.stable"));
  c->Add(7);
  reg->ResetAll();
  EXPECT_EQ(c, reg->counter("obs_test.stable"));  // pointer survives
  EXPECT_EQ(c->value(), 0u);                      // value does not
}

TEST(MetricsTest, WriteJsonEmitsEveryInstrument) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->counter("obs_test.json_counter")->Add(3);
  reg->gauge("obs_test.json_gauge")->Set(1.5);
  reg->histogram("obs_test.json_hist")->Observe(2.0);
  std::ostringstream out;
  reg->WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"obs_test.json_counter\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"obs_test.json_gauge\": 1.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"obs_test.json_hist\": {\"count\": 1"),
            std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledSpanRecordsNothing) {
  Tracer* disabled = Tracer::Disabled();
  EXPECT_FALSE(disabled->enabled());
  {
    Span span(disabled, "never");
    EXPECT_FALSE(span.enabled());
    EXPECT_EQ(span.id(), 0u);
    span.SetAttr("k", uint64_t{1});
  }
  EXPECT_EQ(disabled->event_count(), 0u);
  // The default installed tracer IS the disabled one.
  EXPECT_EQ(Tracer::Get(), disabled);
}

TEST(TracerTest, NestedSpansAutoParentOnOneThread) {
  Tracer tracer(Tracer::Clock::kVirtual);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    Span outer(&tracer, "outer");
    outer_id = outer.id();
    {
      Span inner(&tracer, "inner");
      inner_id = inner.id();
    }
  }
  ASSERT_TRUE(tracer.CheckBalanced().ok());
  const std::vector<Tracer::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, Tracer::SpanRecord> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name["outer"].id, outer_id);
  EXPECT_EQ(by_name["outer"].parent, 0u);
  EXPECT_EQ(by_name["inner"].id, inner_id);
  EXPECT_EQ(by_name["inner"].parent, outer_id);
}

TEST(TracerTest, ExplicitParentAttachesCrossThreadChildren) {
  Tracer tracer(Tracer::Clock::kVirtual);
  Tracer::Install(&tracer);
  {
    Span root(Tracer::Get(), "fanout");
    std::thread worker([parent = root.id()] {
      // A worker thread has an empty span stack: without the explicit
      // parent this span would be a root.
      Span child(Tracer::Get(), "worker", parent);
      child.SetAttr("shard", uint64_t{3});
    });
    worker.join();
  }
  Tracer::Install(nullptr);
  ASSERT_TRUE(tracer.CheckBalanced().ok()) << tracer.CheckBalanced().ToString();
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& root = spans[0].name == "fanout" ? spans[0] : spans[1];
  const auto& child = spans[0].name == "worker" ? spans[0] : spans[1];
  EXPECT_EQ(child.parent, root.id);
  EXPECT_NE(child.tid, root.tid);
  ASSERT_EQ(child.attrs.size(), 1u);
  EXPECT_EQ(child.attrs[0].key, "shard");
  EXPECT_EQ(child.attrs[0].value, "3");
}

TEST(TracerTest, VirtualClockIsDeterministic) {
  auto run = [] {
    Tracer tracer(Tracer::Clock::kVirtual);
    {
      Span a(&tracer, "a");
      Span b(&tracer, "b");
    }
    std::ostringstream out;
    EXPECT_TRUE(tracer.WriteJsonLines(out).ok());
    return out.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"dur_us\""), std::string::npos);
}

TEST(TracerTest, ChromeTraceIsBalancedJson) {
  Tracer tracer(Tracer::Clock::kVirtual);
  {
    Span a(&tracer, "alpha");
    { Span b(&tracer, "beta \"quoted\"\n"); }
  }
  std::ostringstream out;
  ASSERT_TRUE(tracer.WriteChromeTrace(out).ok());
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  // One B and one E per span, escaping applied.
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\": \"B\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++begins;
  }
  for (size_t pos = 0; (pos = json.find("\"ph\": \"E\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_NE(json.find("beta \\\"quoted\\\"\\n"), std::string::npos) << json;
}

TEST(TracerTest, CheckBalancedCatchesOrphanEnds) {
  Tracer tracer(Tracer::Clock::kVirtual);
  const uint64_t id = tracer.BeginSpan("open");
  EXPECT_FALSE(tracer.CheckBalanced().ok());  // still open
  tracer.EndSpan(id, {});
  EXPECT_TRUE(tracer.CheckBalanced().ok());
}

TEST(TracerTest, PhaseTimerRecordsSecondsAndHistogram) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  Histogram* hist = reg->histogram("obs_test.phase.seconds");
  const uint64_t before = hist->count();
  double seconds = -1.0;
  {
    PhaseTimer timer("obs_test.phase", &seconds);
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(hist->count(), before + 1);
}

// ---------------------------------------------------------------------------
// Full pipeline: every phase spanned, per-shard children attached, and
// the exported Chrome trace validates. Writes the trace_check.py fixture
// when AIM_TRACE_OUT is set.

workload::Workload PipelineWorkload() {
  workload::Workload w;
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  EXPECT_TRUE(
      w.Add("UPDATE users SET score = 1 WHERE org_id = 3", 4.0).ok());
  return w;
}

TEST(TraceExportTest, FullPipelineChromeTraceValidates) {
  FaultRegistry::Instance().DisarmAll();
  Tracer tracer;  // steady clock: the exported trace has real durations
  Tracer::Install(&tracer);

  // Workload parsing happens under the tracer so sql.parse spans appear.
  const workload::Workload w = PipelineWorkload();

  // One full continuous-tuner interval…
  {
    storage::Database db = MakeUsersDb(500, /*seed=*/7);
    core::ContinuousTunerOptions options;
    options.aim.num_threads = 2;
    // Compression on (and the candidate cache carried by default) so the
    // trace gate can demand the workload.compress and candgen.incremental
    // spans alongside the classic pipeline phases.
    options.aim.compression.enabled = true;
    // Exploration + ordered deployment on, so the exploration.gate and
    // deploy.step spans the trace gate demands are exported too.
    options.exploration.enabled = true;
    options.aim.deployment.ordered = true;
    core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    Result<core::IntervalReport> r = tuner.Tick(w, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.ValueOrDie().degraded);
    ASSERT_FALSE(r.ValueOrDie().aim.recommended.empty());
  }

  // …and one sharded run, for the per-shard child spans.
  {
    std::vector<storage::Database> dbs;
    for (int i = 0; i < 3; ++i) {
      dbs.push_back(MakeUsersDb(500, /*seed=*/100 + i));
    }
    core::ShardedOptions options;
    options.comprehensive_validation = true;
    options.aim.num_threads = 2;
    core::ShardedIndexManager manager(options);
    std::vector<core::Shard> shards;
    for (storage::Database& db : dbs) {
      shards.push_back(core::Shard{&db, nullptr});
    }
    Result<core::ShardedReport> r =
        manager.RunOnce(w, shards, optimizer::CostModel());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  // …and one (quiesced) online index build, so the trace carries the
  // online.build/online.catchup/online.swap spans the trace gate's
  // --require-if rules enforce.
  {
    storage::Database db = MakeUsersDb(300, /*seed=*/21);
    catalog::IndexDef def;
    def.table = 0;
    def.columns = {1};
    storage::OnlineIndexBuilder builder(&db);
    Result<storage::OnlineBuildReport> r = builder.Build(def);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().snapshot_rows, 300u);
  }

  Tracer::Install(nullptr);
  ASSERT_TRUE(tracer.CheckBalanced().ok())
      << tracer.CheckBalanced().ToString();

  const std::vector<Tracer::SpanRecord> spans = tracer.Snapshot();
  std::set<std::string> names;
  std::map<uint64_t, const Tracer::SpanRecord*> by_id;
  for (const auto& s : spans) {
    names.insert(s.name);
    by_id[s.id] = &s;
  }
  // Every pipeline phase is spanned.
  for (const char* phase :
       {"tuner.tick", "aim.run_once", "aim.recommend", "aim.selection",
        "aim.candgen", "aim.merge", "aim.knapsack", "aim.ranking",
        "aim.validation", "aim.apply", "whatif.plan", "sql.parse",
        "executor.execute", "sharded.run_once", "sharded.validation",
        "shard.validate", "sharded.apply", "shard.apply", "online.build",
        "online.snapshot", "online.catchup", "online.swap",
        "exploration.gate", "deploy.step"}) {
    EXPECT_EQ(names.count(phase), 1u) << "missing span: " << phase;
  }
  // Per-shard children hang off the sharded validation/apply phases.
  size_t validate_children = 0;
  size_t apply_children = 0;
  for (const auto& s : spans) {
    if (s.name == "shard.validate") {
      ASSERT_NE(s.parent, 0u);
      ASSERT_TRUE(by_id.count(s.parent));
      EXPECT_EQ(by_id[s.parent]->name, "sharded.validation");
      ++validate_children;
    }
    if (s.name == "shard.apply") {
      ASSERT_NE(s.parent, 0u);
      ASSERT_TRUE(by_id.count(s.parent));
      EXPECT_EQ(by_id[s.parent]->name, "sharded.apply");
      ++apply_children;
    }
  }
  EXPECT_EQ(validate_children, 3u);
  EXPECT_EQ(apply_children, 3u);

  // Export the Chrome trace — to the fixture path when the ctest wiring
  // asks for it, to a scratch file otherwise (the write path itself is
  // under test either way).
  const char* out_path = std::getenv("AIM_TRACE_OUT");
  const std::string path = out_path != nullptr
                               ? std::string(out_path)
                               : ::testing::TempDir() + "/obs_trace.json";
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  ASSERT_TRUE(tracer.WriteChromeTrace(out).ok());
  out.close();
  ASSERT_TRUE(out.good()) << path;
}

// The AimRunStats phase timings are sourced from the obs layer: the same
// run must populate both the report fields and the registry histograms.
TEST(TraceExportTest, RunStatsSourcedFromRegistry) {
  FaultRegistry::Instance().DisarmAll();
  MetricsRegistry* reg = MetricsRegistry::Global();
  Histogram* selection = reg->histogram("aim.selection.seconds");
  Histogram* apply = reg->histogram("aim.apply.seconds");
  const uint64_t selection_before = selection->count();
  const uint64_t apply_before = apply->count();

  storage::Database db = MakeUsersDb(500, /*seed=*/7);
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), {});
  Result<core::AimReport> r = aim.RunOnce(PipelineWorkload(), nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(selection->count(), selection_before + 1);
  EXPECT_EQ(apply->count(), apply_before + 1);
  EXPECT_GE(r.ValueOrDie().stats.selection_seconds, 0.0);
  EXPECT_GE(r.ValueOrDie().stats.apply_seconds, 0.0);
}

// The default (batch) engine feeds the executor.batch.* counters: one
// SELECT bumps the batch count and accounts every row its scan/join
// operators produced. The row interpreter must leave them untouched.
TEST(TraceExportTest, BatchExecutorCountersTrackDefaultEngine) {
  FaultRegistry::Instance().DisarmAll();
  MetricsRegistry* reg = MetricsRegistry::Global();
  Counter* count = reg->counter("executor.batch.count");
  Counter* rows = reg->counter("executor.batch.rows");

  storage::Database db = MakeUsersDb(500, /*seed=*/7);
  const sql::Statement stmt =
      aim::testing::MustParse("SELECT id FROM users WHERE org_id = 3");

  executor::Executor batch_exec(&db, optimizer::CostModel());
  const uint64_t count_before = count->value();
  const uint64_t rows_before = rows->value();
  ASSERT_TRUE(batch_exec.Execute(stmt).ok());
  EXPECT_EQ(count->value(), count_before + 1);
  EXPECT_GE(rows->value(), rows_before + 500);  // full scan feeds 500 rows

  executor::ExecutorOptions row_options;
  row_options.engine = executor::EngineKind::kRowAtATime;
  executor::Executor row_exec(&db, optimizer::CostModel(), row_options);
  const uint64_t count_mid = count->value();
  ASSERT_TRUE(row_exec.Execute(stmt).ok());
  EXPECT_EQ(count->value(), count_mid);
}

// ---------------------------------------------------------------------------
// WhatIfCache stats: the TSan regression test. stats()/size()/Peek poll
// concurrently with a GetOrCompute storm; under AIM_SANITIZE=thread any
// unsynchronized counter access fails the run, and the monotonicity +
// conservation asserts pin the lock-free snapshot semantics.

TEST(WhatIfCacheStatsTest, ConcurrentPollersSeeMonotoneConsistentStats) {
  constexpr int kWriters = 4;
  constexpr int kIters = 3000;
  constexpr uint64_t kKeys = 64;
  // Capacity below the key count so evictions churn continuously.
  optimizer::WhatIfCache cache(/*capacity=*/32);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> computes{0};

  std::thread poller([&] {
    optimizer::WhatIfCacheStats last;
    while (!done.load(std::memory_order_acquire)) {
      const optimizer::WhatIfCacheStats s = cache.stats();
      // Counters are monotone: a torn or racy read would go backwards.
      EXPECT_GE(s.hits, last.hits);
      EXPECT_GE(s.misses, last.misses);
      EXPECT_GE(s.evictions, last.evictions);
      last = s;
      (void)cache.size();
      (void)cache.Peek({1, 1});
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        const uint64_t k = rng.Uniform(kKeys);
        Result<double> r = cache.GetOrCompute(
            {k, k * 31}, [&]() -> Result<double> {
              computes.fetch_add(1, std::memory_order_relaxed);
              return static_cast<double>(k);
            });
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.ValueOrDie(), static_cast<double>(k));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  poller.join();

  const optimizer::WhatIfCacheStats s = cache.stats();
  // Conservation at quiescence: every lookup was a hit or a miss…
  EXPECT_EQ(s.hits + s.misses,
            static_cast<uint64_t>(kWriters) * kIters);
  // …every miss ran the compute exactly once (single flight)…
  EXPECT_EQ(s.misses, computes.load());
  // …and the eviction count matches what left the cache.
  EXPECT_EQ(s.misses - s.evictions, cache.size());
  EXPECT_GT(s.evictions, 0u);
}

}  // namespace
}  // namespace aim::obs
