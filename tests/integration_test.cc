// End-to-end integration: full benchmark bootstraps, estimate-vs-observed
// consistency sweeps, and the supporting components working together.
#include <gtest/gtest.h>

#include "advisors/aim_adapter.h"
#include "core/aim.h"
#include "core/continuous.h"
#include "executor/executor.h"
#include "support/regression_detector.h"
#include "support/stats_exporter.h"
#include "tests/test_util.h"
#include "workload/job.h"
#include "workload/replay.h"
#include "workload/tpch.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;

TEST(IntegrationTest, TpchBootstrapCutsEstimatedCost) {
  storage::Database db;
  workload::TpchOptions options;
  options.materialized_sf = 0.002;
  options.stats_sf = 10.0;
  ASSERT_TRUE(workload::BuildTpch(&db, options).ok());
  workload::Workload w = workload::TpchQueries().MoveValue();

  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  const double before =
      what_if.WorkloadCost(w.statements(), w.weights()).ValueOrDie();

  core::AimOptions aim_options;
  aim_options.validate_on_clone = false;
  aim_options.candidates.max_index_width = 4;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                  aim_options);
  Result<core::AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  std::vector<catalog::IndexDef> config;
  for (const auto& c : r.ValueOrDie().recommended) {
    config.push_back(c.def);
  }
  ASSERT_TRUE(what_if.SetConfiguration(config).ok());
  const double after =
      what_if.WorkloadCost(w.statements(), w.weights()).ValueOrDie();
  // Fig. 4 shape: a relaxed budget cuts the estimated cost by >= 2x.
  EXPECT_LT(after, before * 0.5);
  // And AIM stays frugal with optimizer calls.
  EXPECT_LT(r.ValueOrDie().stats.what_if_calls, 500u);
}

TEST(IntegrationTest, JobBootstrapCutsEstimatedCost) {
  storage::Database db;
  workload::JobOptions options;
  options.scale = 0.03;
  options.stats_scale = 30.0;
  ASSERT_TRUE(workload::BuildJob(&db, options).ok());
  workload::Workload w = workload::JobQueries().MoveValue();

  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  const double before =
      what_if.WorkloadCost(w.statements(), w.weights()).ValueOrDie();
  core::AimOptions aim_options;
  aim_options.validate_on_clone = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                  aim_options);
  Result<core::AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  std::vector<catalog::IndexDef> config;
  for (const auto& c : r.ValueOrDie().recommended) {
    config.push_back(c.def);
  }
  ASSERT_TRUE(what_if.SetConfiguration(config).ok());
  const double after =
      what_if.WorkloadCost(w.statements(), w.weights()).ValueOrDie();
  EXPECT_LT(after, before * 0.2);  // join workloads improve dramatically
}

// Estimate-vs-observed consistency: when the optimizer claims an index
// helps a query, actually executing must confirm the direction.
class ConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencySweep, OptimizerChoicesImproveObservedCpu) {
  Rng rng(GetParam());
  storage::Database db = MakeUsersDb(3000, GetParam());
  // A random conjunctive query over the fixture schema.
  const char* eq_cols[] = {"org_id", "status", "score"};
  const uint64_t ndv[] = {100, 5, 1000};
  std::string sql = "SELECT id FROM users WHERE ";
  const int pick = static_cast<int>(rng.Uniform(3));
  sql += std::string(eq_cols[pick]) + " = " +
         std::to_string(rng.Uniform(ndv[pick]));
  if (rng.Bernoulli(0.5)) {
    sql += " AND created_at > " + std::to_string(rng.Uniform(3000));
  }
  sql::Statement stmt = aim::testing::MustParse(sql);

  executor::Executor exec(&db, optimizer::CostModel());
  const double cpu_before =
      exec.Execute(stmt).ValueOrDie().metrics.cpu_seconds;

  // Let AIM pick whatever it wants for this single query.
  workload::Workload w;
  ASSERT_TRUE(w.Add(sql, 100.0).ok());
  core::AimOptions options;
  options.validate_on_clone = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok());
  if (r.ValueOrDie().recommended.empty()) {
    // Nothing promised, nothing to check.
    return;
  }
  const double cpu_after =
      exec.Execute(stmt).ValueOrDie().metrics.cpu_seconds;
  EXPECT_LT(cpu_after, cpu_before * 1.05) << sql;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySweep,
                         ::testing::Range<uint64_t>(1, 26));

TEST(IntegrationTest, ExporterFeedsAimAcrossReplicas) {
  storage::Database db = MakeUsersDb(4000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 1.0).ok());

  // Two replicas each see half the traffic; AIM consumes the warehouse
  // aggregate produced by the exporter.
  workload::WorkloadMonitor replica_a;
  workload::WorkloadMonitor replica_b;
  executor::Executor exec(&db, optimizer::CostModel());
  for (int i = 0; i < 30; ++i) {
    auto r = exec.Execute(w.queries[0].stmt);
    ASSERT_TRUE(r.ok());
    (i % 2 == 0 ? replica_a : replica_b)
        .RecordKeyed(w.queries[0].fingerprint,
                     w.queries[0].normalized_sql,
                     r.ValueOrDie().metrics);
  }
  support::StatsExporter exporter;
  exporter.RegisterReplica("a", &replica_a);
  exporter.RegisterReplica("b", &replica_b);
  ASSERT_TRUE(exporter.ExportInterval().ok());

  core::AimOptions options;
  options.validate_on_clone = false;
  options.selection.min_executions = 25;  // neither replica alone passes
  options.selection.min_benefit_cores = 1e-9;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.Recommend(w, &exporter.aggregate());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().stats.queries_selected, 1u);
  EXPECT_FALSE(r.ValueOrDie().recommended.empty());
}

TEST(IntegrationTest, RegressionDetectorCatchesDroppedIndex) {
  // Simulates the production safety loop: a healthy indexed query, the
  // index disappears (bad automation change), the off-host detector
  // flags the CPU spike.
  storage::Database db = MakeUsersDb(4000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  def.created_by_automation = true;
  catalog::IndexId idx = db.CreateIndex(def).ValueOrDie();

  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 1.0).ok());
  executor::Executor exec(&db, optimizer::CostModel());
  support::RegressionDetector detector;

  auto run_interval = [&]() {
    workload::WorkloadMonitor monitor;
    for (int i = 0; i < 20; ++i) {
      auto r = exec.Execute(w.queries[0].stmt);
      monitor.RecordKeyed(w.queries[0].fingerprint,
                          w.queries[0].normalized_sql,
                          r.ValueOrDie().metrics);
    }
    return monitor.Snapshot();
  };
  for (int interval = 0; interval < 4; ++interval) {
    EXPECT_TRUE(detector.Observe(run_interval()).empty());
  }
  ASSERT_TRUE(db.DropIndex(idx).ok());
  auto regressions = detector.Observe(run_interval(), {{idx, 0}});
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_GT(regressions[0].ratio, 2.0);
}

TEST(IntegrationTest, AimAdvisorMatchesDirectRecommendation) {
  // The adapter used by the benchmark harness must agree with the core
  // API it wraps.
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());

  advisors::AimAdvisor adapter(&db);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  advisors::AdvisorOptions options;
  Result<advisors::AdvisorResult> via_adapter =
      adapter.Recommend(w, &what_if, options);
  ASSERT_TRUE(via_adapter.ok());

  core::AimOptions aim_options;
  aim_options.validate_on_clone = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                  aim_options);
  Result<core::AimReport> direct = aim.Recommend(w, nullptr);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_adapter.ValueOrDie().indexes.size(),
            direct.ValueOrDie().recommended.size());
  for (size_t i = 0; i < direct.ValueOrDie().recommended.size(); ++i) {
    EXPECT_EQ(via_adapter.ValueOrDie().indexes[i].columns,
              direct.ValueOrDie().recommended[i].def.columns);
  }
}

TEST(IntegrationTest, ReplayRecoveryAfterIndexDrop) {
  // The Fig. 3 story in miniature: drop -> degraded -> AIM -> recovered.
  storage::Database db = MakeUsersDb(3000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(db.CreateIndex(def).ok());

  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 1.0).ok());
  workload::ReplayDriver::Options replay;
  replay.offered_qps = 40;
  replay.cpu_capacity_seconds_per_tick = 100.0;
  workload::ReplayDriver driver(&db, optimizer::CostModel(), replay);

  std::vector<workload::ReplayTick> series = driver.Run(
      w, 9, [&](int tick) {
        if (tick == 3) {
          for (const auto* idx :
               db.catalog().AllIndexes(false, false)) {
            (void)db.DropIndex(idx->id);
          }
        }
        if (tick == 6) {
          core::AimOptions options;
          options.validate_on_clone = false;
          options.selection.min_benefit_cores = 1e-9;
          options.selection.min_executions = 1;
          core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                          options);
          Result<core::AimReport> r =
              aim.RunOnce(w, &driver.monitor());
          ASSERT_TRUE(r.ok());
          ASSERT_FALSE(r.ValueOrDie().recommended.empty());
        }
      });
  // healthy < degraded, recovered ~ healthy again.
  EXPECT_GT(series[4].avg_cpu_per_query,
            series[1].avg_cpu_per_query * 3.0);
  EXPECT_LT(series[8].avg_cpu_per_query,
            series[4].avg_cpu_per_query * 0.5);
}

}  // namespace
}  // namespace aim
