// Differential test oracle (the pinning suite for the tracing refactor):
// an index configuration may change plans and costs, never answers. A
// seeded generator produces hundreds of random queries; each runs against
// a heap-only database and against a copy carrying the configuration AIM
// itself recommended for that exact workload, and the sorted row
// fingerprints must match exactly.
//
// This differs from model_based_test.cc's IndexIndependenceTest in what
// it pins: there the indexes are a random pile, here they are the
// advisor's real output — so a bug anywhere in the recommend → apply →
// plan-selection chain that corrupts results (not just costs) fails here.
//
// Run with `ctest -L oracle`.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/aim.h"
#include "executor/executor.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

// ---------------------------------------------------------------------------
// Seeded query generator over users(id, org_id, status, score,
// created_at, email, payload). Column domains mirror MakeUsersDemoDb's
// ColumnSpecs so predicates are selective but rarely empty.

class QueryGen {
 public:
  QueryGen(Rng* rng, uint64_t rows) : rng_(rng), rows_(rows) {}

  std::string Next() {
    const double shape = rng_->NextDouble();
    if (shape < 0.10) return Aggregate();
    return PlainSelect();
  }

 private:
  struct IntCol {
    const char* name;
    uint64_t domain;
  };

  IntCol PickIntCol() {
    static constexpr const char* kNames[] = {"id", "org_id", "status",
                                             "score", "created_at"};
    const uint64_t domains[] = {rows_, 100, 5, 1000, rows_};
    const size_t i = rng_->Uniform(5);
    return {kNames[i], domains[i]};
  }

  std::string Literal(const IntCol& col) {
    // Occasionally out of domain: empty results must match too.
    const uint64_t bound = rng_->Bernoulli(0.1) ? col.domain * 2 + 1
                                                : col.domain;
    return std::to_string(rng_->Uniform(bound));
  }

  std::string Predicate() {
    const IntCol col = PickIntCol();
    switch (rng_->Uniform(6)) {
      case 0:
        return std::string(col.name) + " = " + Literal(col);
      case 1:
        return std::string(col.name) + " < " + Literal(col);
      case 2:
        return std::string(col.name) + " > " + Literal(col);
      case 3: {
        const uint64_t lo = rng_->Uniform(col.domain);
        const uint64_t width = 1 + rng_->Uniform(col.domain / 4 + 1);
        return std::string(col.name) + " BETWEEN " + std::to_string(lo) +
               " AND " + std::to_string(lo + width);
      }
      case 4: {
        std::string in = std::string(col.name) + " IN (";
        const int n = 2 + static_cast<int>(rng_->Uniform(3));
        for (int i = 0; i < n; ++i) {
          if (i > 0) in += ", ";
          in += Literal(col);
        }
        return in + ")";
      }
      default:
        return "email LIKE 'user" + std::to_string(rng_->Uniform(10)) +
               "%'";
    }
  }

  std::string Where() {
    std::string where = Predicate();
    const int extra = static_cast<int>(rng_->Uniform(3));
    for (int i = 0; i < extra; ++i) {
      if (rng_->Bernoulli(0.25)) {
        where = "(" + where + ") OR (" + Predicate() + ")";
      } else {
        where += " AND " + Predicate();
      }
    }
    return where;
  }

  std::string PlainSelect() {
    static constexpr const char* kCols[] = {"id",    "org_id",
                                            "status", "score",
                                            "created_at", "email"};
    std::string cols;
    const int n = 1 + static_cast<int>(rng_->Uniform(3));
    for (int i = 0; i < n; ++i) {
      if (i > 0) cols += ", ";
      cols += kCols[rng_->Uniform(6)];
    }
    std::string sql = "SELECT " + cols + " FROM users WHERE " + Where();
    // No LIMIT, ever: with ties two plans can both be right. ORDER BY is
    // safe — the oracle compares sorted fingerprints.
    if (rng_->Bernoulli(0.2)) {
      sql += std::string(" ORDER BY ") + kCols[rng_->Uniform(6)];
      if (rng_->Bernoulli(0.5)) sql += " DESC";
    }
    return sql;
  }

  std::string Aggregate() {
    // Integer-only aggregates: SUM/MIN/MAX/COUNT over int64 columns are
    // exact regardless of the scan order an index choice induces
    // (floating-point SUM would not be).
    if (rng_->Bernoulli(0.5)) {
      return "SELECT status, COUNT(*) FROM users WHERE " + Where() +
             " GROUP BY status";
    }
    return "SELECT MIN(score), MAX(score), COUNT(*) FROM users WHERE " +
           Where();
  }

  Rng* rng_;
  uint64_t rows_;
};

// Result comparison uses the shared aim::testing::RowFingerprints helper
// (tests/test_util.h), which the exploration differential suite reuses.
using aim::testing::RowFingerprints;

// ---------------------------------------------------------------------------

class RecommendedConfigOracleTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RecommendedConfigOracleTest, HeapAndRecommendedConfigAgree) {
  FaultRegistry::Instance().DisarmAll();
  constexpr uint64_t kRows = 1500;
  constexpr int kQueries = 220;  // ISSUE floor is 200

  Rng rng(GetParam());
  QueryGen gen(&rng, kRows);
  std::vector<std::string> queries;
  queries.reserve(kQueries);
  workload::Workload w;
  for (int i = 0; i < kQueries; ++i) {
    std::string sql = gen.Next();
    ASSERT_TRUE(w.Add(sql, 1.0).ok()) << sql;
    queries.push_back(std::move(sql));
  }

  // Heap-only baseline and the copy AIM tunes for this exact workload.
  storage::Database heap_db = MakeUsersDb(kRows, GetParam() + 31);
  storage::Database tuned_db = heap_db;
  core::AimOptions options;
  options.num_threads = 2;
  core::AutomaticIndexManager aim(&tuned_db, optimizer::CostModel(),
                                  options);
  Result<core::AimReport> report = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report.ValueOrDie().recommended.empty())
      << "oracle run recommended nothing — the differential half of the "
         "test would be vacuous";

  executor::Executor heap_exec(&heap_db, optimizer::CostModel());
  executor::Executor tuned_exec(&tuned_db, optimizer::CostModel());
  uint64_t tuned_index_entries = 0;
  for (const std::string& sql : queries) {
    const sql::Statement stmt = MustParse(sql);
    Result<executor::ExecuteResult> a = heap_exec.Execute(stmt);
    Result<executor::ExecuteResult> b = tuned_exec.Execute(stmt);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(RowFingerprints(a.ValueOrDie()),
              RowFingerprints(b.ValueOrDie()))
        << sql;
    tuned_index_entries += b.ValueOrDie().metrics.index_entries_read;
  }
  // The tuned side must actually have taken index paths somewhere, or the
  // oracle degenerates into heap-vs-heap.
  EXPECT_GT(tuned_index_entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecommendedConfigOracleTest,
                         ::testing::Values<uint64_t>(1, 2, 3));

// Join flavour: the recommended configuration must not change join
// results either (plans differ much more radically here — index nested
// loop vs heap scans on either side).
TEST(RecommendedConfigOracleTest, JoinResultsAgree) {
  FaultRegistry::Instance().DisarmAll();
  Rng rng(17);
  workload::Workload w;
  std::vector<std::string> queries;
  for (int i = 0; i < 40; ++i) {
    std::string sql =
        "SELECT users.id, orders.total FROM users, orders WHERE "
        "users.id = orders.user_id AND orders.status = " +
        std::to_string(rng.Uniform(5));
    if (rng.Bernoulli(0.5)) {
      sql += " AND users.org_id = " + std::to_string(rng.Uniform(100));
    }
    ASSERT_TRUE(w.Add(sql, 1.0).ok()) << sql;
    queries.push_back(std::move(sql));
  }

  storage::Database heap_db = MakeOrdersDb(600, 3000, /*seed=*/5);
  storage::Database tuned_db = heap_db;
  core::AutomaticIndexManager aim(&tuned_db, optimizer::CostModel(), {});
  Result<core::AimReport> report = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  executor::Executor heap_exec(&heap_db, optimizer::CostModel());
  executor::Executor tuned_exec(&tuned_db, optimizer::CostModel());
  for (const std::string& sql : queries) {
    const sql::Statement stmt = MustParse(sql);
    Result<executor::ExecuteResult> a = heap_exec.Execute(stmt);
    Result<executor::ExecuteResult> b = tuned_exec.Execute(stmt);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(RowFingerprints(a.ValueOrDie()),
              RowFingerprints(b.ValueOrDie()))
        << sql;
  }
}

}  // namespace
}  // namespace aim
