#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/selectivity.h"
#include "optimizer/what_if.h"
#include "tests/test_util.h"

namespace aim::optimizer {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

Plan MustPlan(const storage::Database& db, const std::string& sql,
              bool hypothetical = true) {
  Optimizer opt(db.catalog(), CostModel());
  OptimizeOptions options;
  options.include_hypothetical = hypothetical;
  Result<Plan> r = opt.Optimize(MustParse(sql), options);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " sql=" << sql;
  return r.ok() ? r.MoveValue() : Plan{};
}

catalog::IndexId AddIndex(storage::Database* db,
                          std::vector<catalog::ColumnId> cols,
                          catalog::TableId table = 0,
                          bool hypothetical = false) {
  catalog::IndexDef def;
  def.table = table;
  def.columns = std::move(cols);
  def.hypothetical = hypothetical;
  Result<catalog::IndexId> id = db->CreateIndex(def);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? id.ValueOrDie() : catalog::kInvalidIndex;
}

// ---------- selectivity ------------------------------------------------------

TEST(SelectivityTest, EqUsesNdv) {
  storage::Database db = MakeUsersDb(2000);
  AtomicPredicate p;
  p.column = {0, 2};  // status, ndv ~5
  p.kind = PredKind::kEq;
  const double sel = PredicateSelectivity(p, db.catalog(), 0);
  EXPECT_NEAR(sel, 0.2, 0.15);
}

TEST(SelectivityTest, InScalesWithListSize) {
  storage::Database db = MakeUsersDb(2000);
  AtomicPredicate p;
  p.column = {0, 1};  // org_id ndv 100
  p.kind = PredKind::kIn;
  p.in_list_size = 5;
  const double sel = PredicateSelectivity(p, db.catalog(), 0);
  EXPECT_NEAR(sel, 0.05, 0.02);
}

TEST(SelectivityTest, RangeWithLiteralsUsesHistogram) {
  storage::Database db = MakeUsersDb(5000);
  AtomicPredicate p;
  p.column = {0, 4};  // created_at: uniform over [0, 5000)
  p.kind = PredKind::kRange;
  p.has_upper = true;
  p.upper = 2500;
  const double sel = PredicateSelectivity(p, db.catalog(), 0);
  EXPECT_NEAR(sel, 0.5, 0.1);
}

TEST(SelectivityTest, ParameterizedRangeUsesDefault) {
  storage::Database db = MakeUsersDb(100);
  AtomicPredicate p;
  p.column = {0, 4};
  p.kind = PredKind::kRange;
  EXPECT_DOUBLE_EQ(PredicateSelectivity(p, db.catalog(), 0),
                   kDefaultRangeSelectivity);
}

TEST(SelectivityTest, CombinedBacksOff) {
  storage::Database db = MakeUsersDb(2000);
  AtomicPredicate a;
  a.column = {0, 1};
  a.kind = PredKind::kEq;  // ~1/100
  AtomicPredicate b;
  b.column = {0, 2};
  b.kind = PredKind::kEq;  // ~1/5
  const double combined =
      CombinedSelectivity(std::vector<AtomicPredicate>{a, b},
                          db.catalog(), 0);
  const double sa = PredicateSelectivity(a, db.catalog(), 0);
  const double sb = PredicateSelectivity(b, db.catalog(), 0);
  // Backoff: product < combined < min.
  EXPECT_GT(combined, sa * sb);
  EXPECT_LT(combined, std::min(sa, sb) + 1e-12);
}

TEST(SelectivityTest, EmptyPredsIsOne) {
  storage::Database db = MakeUsersDb(100);
  EXPECT_DOUBLE_EQ(
      CombinedSelectivity(std::vector<AtomicPredicate>{}, db.catalog(), 0),
      1.0);
}

TEST(SelectivityTest, GroupCountCapped) {
  storage::Database db = MakeUsersDb(1000);
  EXPECT_LE(EstimateGroupCount(db.catalog(), 0, {1, 3}, 50.0), 50.0);
  EXPECT_NEAR(EstimateGroupCount(db.catalog(), 0, {2}, 1e9),
              5.0, 2.0);
}

// ---------- access paths & plans --------------------------------------------

TEST(OptimizerTest, FullScanWithoutIndexes) {
  storage::Database db = MakeUsersDb(1000);
  Plan plan = MustPlan(db, "SELECT id FROM users WHERE org_id = 5");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_TRUE(plan.steps[0].path.is_full_scan());
  EXPECT_NEAR(plan.est_rows_examined, 1000.0, 1.0);
}

TEST(OptimizerTest, PrefersIndexForSelectiveEq) {
  storage::Database db = MakeUsersDb(5000);
  const double scan_cost =
      MustPlan(db, "SELECT id FROM users WHERE org_id = 5").total_cost();
  AddIndex(&db, {1});
  Plan plan = MustPlan(db, "SELECT id FROM users WHERE org_id = 5");
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_EQ(plan.steps[0].path.eq_prefix_len, 1u);
  EXPECT_LT(plan.total_cost(), scan_cost);
}

TEST(OptimizerTest, AddingIndexNeverIncreasesEstimatedCost) {
  // Property: the optimizer picks the min-cost path, so an extra index
  // can only help or be ignored.
  storage::Database db = MakeUsersDb(3000);
  const char* queries[] = {
      "SELECT id FROM users WHERE org_id = 5",
      "SELECT id FROM users WHERE status = 2 AND score > 100",
      "SELECT org_id, COUNT(*) FROM users GROUP BY org_id",
      "SELECT id FROM users ORDER BY created_at DESC LIMIT 10",
  };
  std::vector<double> before;
  for (const char* q : queries) before.push_back(MustPlan(db, q).total_cost());
  AddIndex(&db, {1});
  AddIndex(&db, {2, 3});
  AddIndex(&db, {4});
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(MustPlan(db, queries[i]).total_cost(), before[i] + 1e-6)
        << queries[i];
  }
}

TEST(OptimizerTest, MultiColumnPrefixMatching) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 2, 3});  // (org_id, status, score)
  Plan plan = MustPlan(
      db,
      "SELECT id FROM users WHERE org_id = 3 AND status = 1 AND "
      "score > 50");
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_EQ(plan.steps[0].path.eq_prefix_len, 2u);
  EXPECT_TRUE(plan.steps[0].path.range_on_next);
}

TEST(OptimizerTest, PrefixStopsAtGap) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 4, 2});  // (org_id, created_at, status)
  Plan plan = MustPlan(
      db, "SELECT id FROM users WHERE org_id = 3 AND status = 1");
  // created_at is unconstrained: the prefix must stop after org_id.
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_EQ(plan.steps[0].path.eq_prefix_len, 1u);
}

TEST(OptimizerTest, CoveringIndexDetected) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 2});  // covers org_id, status (+ id via PK)
  Plan plan = MustPlan(
      db, "SELECT id, status FROM users WHERE org_id = 3");
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_TRUE(plan.steps[0].path.covering);

  Plan plan2 =
      MustPlan(db, "SELECT email FROM users WHERE org_id = 3");
  EXPECT_FALSE(plan2.steps[0].path.covering);
}

TEST(OptimizerTest, CoveringCostsLessThanFetching) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1});
  const double fetching =
      MustPlan(db, "SELECT email FROM users WHERE org_id = 3")
          .total_cost();
  AddIndex(&db, {1, 5});  // (org_id, email): covering
  const double covering =
      MustPlan(db, "SELECT email FROM users WHERE org_id = 3")
          .total_cost();
  EXPECT_LT(covering, fetching);
}

TEST(OptimizerTest, IndexAvoidsSortForOrderBy) {
  storage::Database db = MakeUsersDb(5000);
  Plan no_index =
      MustPlan(db, "SELECT id FROM users ORDER BY created_at LIMIT 10");
  EXPECT_TRUE(no_index.needs_sort);
  AddIndex(&db, {4});
  Plan with_index =
      MustPlan(db, "SELECT id FROM users ORDER BY created_at LIMIT 10");
  EXPECT_FALSE(with_index.needs_sort);
  EXPECT_LT(with_index.total_cost(), no_index.total_cost());
}

TEST(OptimizerTest, IndexAvoidsSortForGroupBy) {
  storage::Database db = MakeUsersDb(5000);
  Plan no_index = MustPlan(
      db, "SELECT org_id, COUNT(*) FROM users GROUP BY org_id");
  EXPECT_TRUE(no_index.needs_sort);
  AddIndex(&db, {1});
  Plan with_index = MustPlan(
      db, "SELECT org_id, COUNT(*) FROM users GROUP BY org_id");
  EXPECT_FALSE(with_index.needs_sort);
}

TEST(OptimizerTest, DescOrderServedByReverseScan) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {4});
  Plan plan = MustPlan(
      db, "SELECT id FROM users ORDER BY created_at DESC LIMIT 5");
  EXPECT_FALSE(plan.needs_sort);
}

TEST(OptimizerTest, LimitPushdownReducesCost) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {4});
  const double all =
      MustPlan(db, "SELECT id FROM users ORDER BY created_at")
          .total_cost();
  const double limited =
      MustPlan(db, "SELECT id FROM users ORDER BY created_at LIMIT 10")
          .total_cost();
  EXPECT_LT(limited, all / 10.0);
}

TEST(OptimizerTest, HypotheticalVisibilityToggle) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1}, 0, /*hypothetical=*/true);
  Plan with = MustPlan(db, "SELECT id FROM users WHERE org_id = 5", true);
  Plan without =
      MustPlan(db, "SELECT id FROM users WHERE org_id = 5", false);
  EXPECT_FALSE(with.steps[0].path.is_full_scan());
  EXPECT_TRUE(without.steps[0].path.is_full_scan());
}

TEST(OptimizerTest, JoinUsesIndexOnInnerTable) {
  storage::Database db = MakeOrdersDb(500, 5000);
  AddIndex(&db, {1}, 1);  // orders(user_id)
  Plan plan = MustPlan(
      db,
      "SELECT users.id FROM users, orders WHERE users.id = "
      "orders.user_id AND users.org_id = 7");
  ASSERT_EQ(plan.steps.size(), 2u);
  // users (filtered) should drive; orders probed via the index.
  EXPECT_EQ(plan.steps[0].instance, 0);
  ASSERT_FALSE(plan.steps[1].path.is_full_scan());
  EXPECT_EQ(plan.steps[1].path.index->table, 1u);
}

TEST(OptimizerTest, JoinOrderPrefersFilteredTableFirst) {
  storage::Database db = MakeOrdersDb(500, 5000);
  AddIndex(&db, {1}, 1);  // orders(user_id)
  Plan plan = MustPlan(
      db,
      "SELECT orders.id FROM orders, users WHERE users.id = "
      "orders.user_id AND users.status = 1 AND users.org_id = 3");
  // The filtered users instance (FROM position 1) should come first.
  EXPECT_EQ(plan.steps[0].instance, 1);
}

TEST(OptimizerTest, JoinCardinalityGrowsWithFanout) {
  storage::Database db = MakeOrdersDb(100, 5000);
  Plan plan = MustPlan(
      db,
      "SELECT users.id FROM users, orders WHERE users.id = "
      "orders.user_id");
  // ~5000 order rows survive the equi-join.
  EXPECT_GT(plan.est_result_rows, 1000.0);
  EXPECT_LT(plan.est_result_rows, 50000.0);
}

TEST(OptimizerTest, DmlInsertMaintenanceIncludesAllIndexes) {
  storage::Database db = MakeUsersDb(1000);
  AddIndex(&db, {1});
  AddIndex(&db, {2, 3});
  Plan plan = MustPlan(
      db,
      "INSERT INTO users (id, org_id, status, score, created_at, email, "
      "payload) VALUES (99999, 1, 2, 3, 4, 'a', 'b')");
  EXPECT_EQ(plan.maintenance.size(), 2u);
  EXPECT_GT(plan.maintenance_cost, 0.0);
}

TEST(OptimizerTest, DmlUpdateOnlyChargesTouchedIndexes) {
  storage::Database db = MakeUsersDb(1000);
  AddIndex(&db, {1});     // org_id: untouched
  AddIndex(&db, {3});     // score: touched
  Plan plan =
      MustPlan(db, "UPDATE users SET score = 7 WHERE id = 5");
  ASSERT_EQ(plan.maintenance.size(), 1u);
}

TEST(OptimizerTest, DmlDeleteChargesAllIndexes) {
  storage::Database db = MakeUsersDb(1000);
  AddIndex(&db, {1});
  AddIndex(&db, {3});
  Plan plan = MustPlan(db, "DELETE FROM users WHERE id = 5");
  EXPECT_EQ(plan.maintenance.size(), 2u);
}

TEST(OptimizerTest, DmlUsesIndexForWhere) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1});
  Plan plan =
      MustPlan(db, "UPDATE users SET score = 1 WHERE org_id = 9");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_FALSE(plan.steps[0].path.is_full_scan());
}

TEST(OptimizerTest, PlanDescribeMentionsIndex) {
  storage::Database db = MakeUsersDb(1000);
  AddIndex(&db, {1});
  Plan plan = MustPlan(db, "SELECT id FROM users WHERE org_id = 5");
  const std::string desc = plan.Describe(db.catalog());
  EXPECT_NE(desc.find("users(org_id)"), std::string::npos);
}

// ---------- what-if ----------------------------------------------------------

TEST(WhatIfTest, ConfigurationSwapping) {
  storage::Database db = MakeUsersDb(5000);
  WhatIfOptimizer what_if(db.catalog(), CostModel());
  sql::Statement stmt =
      MustParse("SELECT id FROM users WHERE org_id = 5");
  const double base = what_if.QueryCost(stmt).ValueOrDie();

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(what_if.SetConfiguration({def}).ok());
  const double with_index = what_if.QueryCost(stmt).ValueOrDie();
  EXPECT_LT(with_index, base);

  what_if.ClearConfiguration();
  EXPECT_DOUBLE_EQ(what_if.QueryCost(stmt).ValueOrDie(), base);
}

TEST(WhatIfTest, CountsCalls) {
  storage::Database db = MakeUsersDb(100);
  WhatIfOptimizer what_if(db.catalog(), CostModel());
  sql::Statement stmt = MustParse("SELECT id FROM users WHERE org_id = 5");
  EXPECT_EQ(what_if.call_count(), 0u);
  (void)what_if.QueryCost(stmt);
  (void)what_if.QueryCost(stmt);
  EXPECT_EQ(what_if.call_count(), 2u);
  what_if.reset_call_count();
  EXPECT_EQ(what_if.call_count(), 0u);
}

TEST(WhatIfTest, DoesNotMutateBaseCatalog) {
  storage::Database db = MakeUsersDb(100);
  WhatIfOptimizer what_if(db.catalog(), CostModel());
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(what_if.SetConfiguration({def}).ok());
  EXPECT_TRUE(db.catalog().AllIndexes(true, false).empty());
  EXPECT_EQ(what_if.catalog().AllIndexes(true, false).size(), 1u);
}

TEST(WhatIfTest, WorkloadCostWeights) {
  storage::Database db = MakeUsersDb(1000);
  WhatIfOptimizer what_if(db.catalog(), CostModel());
  sql::Statement stmt = MustParse("SELECT id FROM users WHERE org_id = 5");
  const double single =
      what_if.WorkloadCost({&stmt}, {1.0}).ValueOrDie();
  const double weighted =
      what_if.WorkloadCost({&stmt, &stmt}, {2.0, 3.0}).ValueOrDie();
  EXPECT_NEAR(weighted, 5.0 * single, 1e-6);
}

TEST(WhatIfTest, DuplicateOfRealIndexIgnored) {
  storage::Database db = MakeUsersDb(100);
  AddIndex(&db, {1});
  WhatIfOptimizer what_if(db.catalog(), CostModel());
  catalog::IndexDef dup;
  dup.table = 0;
  dup.columns = {1};
  EXPECT_TRUE(what_if.SetConfiguration({dup}).ok());
  EXPECT_EQ(what_if.catalog().AllIndexes(true, false).size(), 1u);
}

TEST(CostModelTest, LsmWritesCheaper) {
  CostModel btree{CostParams::BTree()};
  CostModel lsm{CostParams::Lsm()};
  EXPECT_LT(lsm.IndexMaintenanceCost(10), btree.IndexMaintenanceCost(10));
}

TEST(CostModelTest, SortCostSuperlinear) {
  CostModel cm;
  EXPECT_EQ(cm.SortCost(1), 0.0);
  EXPECT_GT(cm.SortCost(2000), 2.0 * cm.SortCost(1000));
}

}  // namespace
}  // namespace aim::optimizer
