#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/ranking.h"
#include "core/workload_selection.h"
#include "tests/test_util.h"

namespace aim::core {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustQuery;

SelectedQuery Wrap(const workload::Query* q) {
  SelectedQuery sq;
  sq.query = q;
  return sq;
}

catalog::IndexDef Def(std::vector<catalog::ColumnId> cols,
                      catalog::TableId table = 0) {
  catalog::IndexDef def;
  def.table = table;
  def.columns = std::move(cols);
  return def;
}

TEST(RankingTest, BeneficialIndexSelected) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q =
      MustQuery("SELECT id FROM users WHERE org_id = 5", 100.0);
  std::vector<SelectedQuery> queries = {Wrap(&q)};
  RankingResult r =
      RankAndSelect({Def({1})}, queries, &what_if, RankingOptions{});
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_GT(r.selected[0].benefit, 0.0);
  EXPECT_EQ(r.selected[0].benefiting_queries.size(), 1u);
  EXPECT_GT(r.what_if_calls, 0u);
}

TEST(RankingTest, UselessIndexRejected) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q =
      MustQuery("SELECT id FROM users WHERE org_id = 5", 100.0);
  std::vector<SelectedQuery> queries = {Wrap(&q)};
  // Index on payload: useless for the query.
  RankingResult r =
      RankAndSelect({Def({6})}, queries, &what_if, RankingOptions{});
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.rejected.size(), 1u);
}

TEST(RankingTest, BudgetRespected) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q1 =
      MustQuery("SELECT id FROM users WHERE org_id = 5", 100.0);
  workload::Query q2 =
      MustQuery("SELECT id FROM users WHERE created_at = 9", 100.0);
  std::vector<SelectedQuery> queries = {Wrap(&q1), Wrap(&q2)};
  std::vector<catalog::IndexDef> candidates = {Def({1}), Def({4})};

  RankingOptions unbounded;
  RankingResult all =
      RankAndSelect(candidates, queries, &what_if, unbounded);
  ASSERT_EQ(all.selected.size(), 2u);

  RankingOptions tight;
  tight.storage_budget_bytes = all.selected[0].size_bytes * 1.2;
  RankingResult limited =
      RankAndSelect(candidates, queries, &what_if, tight);
  EXPECT_EQ(limited.selected.size(), 1u);
  EXPECT_LE(limited.selected_bytes, tight.storage_budget_bytes);
}

TEST(RankingTest, DensityOrderingPrefersCheaperIndex) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q =
      MustQuery("SELECT id FROM users WHERE org_id = 5 AND status = 2",
                100.0);
  std::vector<SelectedQuery> queries = {Wrap(&q)};
  // Narrow (org_id) vs wide (org_id, status, score, created_at, email):
  // similar benefit, very different storage.
  std::vector<catalog::IndexDef> candidates = {Def({1, 2}),
                                               Def({1, 2, 3, 4, 5})};
  RankingOptions options;
  RankingResult r = RankAndSelect(candidates, queries, &what_if, options);
  ASSERT_FALSE(r.selected.empty());
  EXPECT_EQ(r.selected[0].def.columns.size(), 2u);
}

TEST(RankingTest, DmlMaintenanceCounted) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query read =
      MustQuery("SELECT id FROM users WHERE score = 77", 10.0);
  workload::Query write =
      MustQuery("UPDATE users SET score = 1 WHERE id = 5", 2000.0);
  std::vector<SelectedQuery> queries = {Wrap(&read), Wrap(&write)};
  RankingResult r =
      RankAndSelect({Def({3})}, queries, &what_if, RankingOptions{});
  // Either rejected outright or selected with visible maintenance cost.
  const CandidateIndex& c =
      r.selected.empty() ? r.rejected[0] : r.selected[0];
  EXPECT_GT(c.maintenance, 0.0);
}

TEST(RankingTest, HeavyWritesKillLowValueIndex) {
  storage::Database db = MakeUsersDb(2000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query read =
      MustQuery("SELECT id FROM users WHERE score = 77", 1.0);
  workload::Query write = MustQuery(
      "INSERT INTO users (id, org_id, status, score, created_at, email, "
      "payload) VALUES (1, 2, 3, 4, 5, 'a', 'b')",
      1000000.0);
  std::vector<SelectedQuery> queries = {Wrap(&read), Wrap(&write)};
  RankingResult r =
      RankAndSelect({Def({3})}, queries, &what_if, RankingOptions{});
  EXPECT_TRUE(r.selected.empty());
  ASSERT_EQ(r.rejected.size(), 1u);
  EXPECT_LT(r.rejected[0].utility(), 0.0);
}

TEST(RankingTest, ObservedStatsOverrideWeights) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q =
      MustQuery("SELECT id FROM users WHERE org_id = 5", 1.0);
  SelectedQuery sq = Wrap(&q);
  sq.stats.executions = 1000;
  sq.stats.total_cpu_seconds = 50.0;  // hot query
  RankingResult hot =
      RankAndSelect({Def({1})}, {sq}, &what_if, RankingOptions{});
  SelectedQuery cold = Wrap(&q);
  cold.stats.executions = 10;
  cold.stats.total_cpu_seconds = 0.5;
  RankingResult coldr =
      RankAndSelect({Def({1})}, {cold}, &what_if, RankingOptions{});
  ASSERT_FALSE(hot.selected.empty());
  ASSERT_FALSE(coldr.selected.empty());
  EXPECT_GT(hot.selected[0].benefit, coldr.selected[0].benefit);
}

TEST(RankingTest, EmptyCandidatesNoop) {
  storage::Database db = MakeUsersDb(100);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  RankingResult r = RankAndSelect({}, {}, &what_if, RankingOptions{});
  EXPECT_TRUE(r.selected.empty());
  EXPECT_TRUE(r.rejected.empty());
}

// ---------- workload selection -----------------------------------------------

TEST(WorkloadSelectionTest, ThresholdsApplied) {
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1").ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE status = 2").ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE score = 3").ok());

  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics hot;
  hot.rows_examined = 1000;
  hot.rows_sent = 1;
  hot.cpu_seconds = 0.5;
  // Query 0: hot and inefficient -> selected.
  for (int i = 0; i < 100; ++i) {
    monitor.RecordKeyed(w.queries[0].fingerprint,
                        w.queries[0].normalized_sql, hot);
  }
  // Query 1: too few executions -> skipped.
  monitor.RecordKeyed(w.queries[1].fingerprint,
                      w.queries[1].normalized_sql, hot);
  // Query 2: efficient (ddr ~ 1) -> skipped.
  executor::ExecutionMetrics efficient;
  efficient.rows_examined = 10;
  efficient.rows_sent = 10;
  efficient.cpu_seconds = 0.5;
  for (int i = 0; i < 100; ++i) {
    monitor.RecordKeyed(w.queries[2].fingerprint,
                        w.queries[2].normalized_sql, efficient);
  }

  WorkloadSelectionOptions options;
  options.min_executions = 5;
  options.min_benefit_cores = 0.05;
  options.interval_seconds = 60.0;
  std::vector<SelectedQuery> selected =
      SelectRepresentativeWorkload(w, monitor, options);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].query->fingerprint, w.queries[0].fingerprint);
  EXPECT_NEAR(selected[0].expected_benefit, 0.4995, 0.01);
}

TEST(WorkloadSelectionTest, OrderedByBenefitRate) {
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1").ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE status = 2").ok());
  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  m.rows_examined = 1000;
  m.rows_sent = 0;
  m.cpu_seconds = 0.2;
  for (int i = 0; i < 50; ++i) {
    monitor.RecordKeyed(w.queries[0].fingerprint,
                        w.queries[0].normalized_sql, m);
  }
  m.cpu_seconds = 2.0;  // second query is 10x hotter
  for (int i = 0; i < 50; ++i) {
    monitor.RecordKeyed(w.queries[1].fingerprint,
                        w.queries[1].normalized_sql, m);
  }
  auto selected = SelectRepresentativeWorkload(w, monitor, {});
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].query->fingerprint, w.queries[1].fingerprint);
}

TEST(WorkloadSelectionTest, DmlAlwaysCarried) {
  workload::Workload w;
  ASSERT_TRUE(w.Add("UPDATE users SET score = 1 WHERE id = 2").ok());
  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  m.cpu_seconds = 0.001;
  monitor.RecordKeyed(w.queries[0].fingerprint,
                      w.queries[0].normalized_sql, m);
  auto selected = SelectRepresentativeWorkload(w, monitor, {});
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_TRUE(selected[0].query->stmt.is_dml());
}

TEST(WorkloadSelectionTest, MaxQueriesCap) {
  workload::Workload w;
  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  m.rows_examined = 1000;
  m.rows_sent = 0;
  m.cpu_seconds = 1.0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        w.Add("SELECT id FROM users WHERE org_id = " + std::to_string(i))
            .ok());
  }
  // All distinct fingerprints? No: they normalize identically! Use
  // distinct structures instead.
  w.queries.clear();
  for (int i = 0; i < 20; ++i) {
    std::string sql = "SELECT id FROM users WHERE org_id = 1";
    for (int k = 0; k < i; ++k) sql += " AND status = " + std::to_string(k);
    ASSERT_TRUE(w.Add(sql).ok());
  }
  for (const auto& q : w.queries) {
    for (int i = 0; i < 50; ++i) {
      monitor.RecordKeyed(q.fingerprint, q.normalized_sql, m);
    }
  }
  WorkloadSelectionOptions options;
  options.max_queries = 5;
  EXPECT_EQ(SelectRepresentativeWorkload(w, monitor, options).size(), 5u);
}

TEST(ExplainTest, MentionsIndexAndNumbers) {
  storage::Database db = MakeUsersDb(2000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q =
      MustQuery("SELECT id FROM users WHERE org_id = 5", 100.0);
  SelectedQuery sq = Wrap(&q);
  sq.stats.executions = 42;
  sq.stats.total_cpu_seconds = 4.2;
  sq.stats.rows_examined = 1000;
  std::vector<SelectedQuery> queries = {sq};
  RankingResult r =
      RankAndSelect({Def({1})}, queries, &what_if, RankingOptions{});
  ASSERT_FALSE(r.selected.empty());
  const std::string text =
      ExplainRecommendation(r.selected[0], queries, db.catalog());
  EXPECT_NE(text.find("users(org_id)"), std::string::npos);
  EXPECT_NE(text.find("execs=42"), std::string::npos);
  EXPECT_NE(text.find("expected benefit"), std::string::npos);
}

}  // namespace
}  // namespace aim::core
