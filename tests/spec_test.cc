#include <gtest/gtest.h>

#include <map>

#include "optimizer/what_if.h"
#include "workload/spec.h"

namespace aim::workload {
namespace {

constexpr const char* kSchema = R"(
# demo schema
TABLE users (id INT PK, org_id INT, score DOUBLE, email STRING(24), joined DATE)
ROWS users 500 org_id:ndv=20 score:ndv=400 email:ndv=500 joined:ndv=300
INDEX users (org_id)
)";

TEST(SchemaSpecTest, BuildsTablesRowsAndIndexes) {
  Result<storage::Database> r = BuildDatabaseFromSpec(kSchema);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  storage::Database& db = r.ValueOrDie();
  ASSERT_EQ(db.catalog().table_count(), 1u);
  const catalog::TableDef& t = db.catalog().table(0);
  EXPECT_EQ(t.name, "users");
  ASSERT_EQ(t.columns.size(), 5u);
  EXPECT_EQ(t.columns[2].type, catalog::ColumnType::kDouble);
  EXPECT_EQ(t.columns[3].type, catalog::ColumnType::kString);
  EXPECT_EQ(t.columns[3].avg_width, 24u);
  EXPECT_EQ(t.columns[4].type, catalog::ColumnType::kDate);
  ASSERT_EQ(t.primary_key, (std::vector<catalog::ColumnId>{0}));
  EXPECT_EQ(db.heap(0).live_count(), 500u);
  // org_id NDV honoured (analyzed from generated data).
  EXPECT_LE(t.stats.columns[1].ndv, 20u);
  EXPECT_GE(t.stats.columns[1].ndv, 10u);
  // One user index + the implicit PRIMARY.
  EXPECT_EQ(db.catalog().AllIndexes(false, false).size(), 1u);
}

TEST(SchemaSpecTest, ZipfAndNullOptions) {
  const char* schema = R"(
TABLE t (id INT PK, a INT, b INT NULLABLE)
ROWS t 2000 a:zipf=0.9 a:ndv=100 b:null=0.5
)";
  Result<storage::Database> r = BuildDatabaseFromSpec(schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stats = r.ValueOrDie().catalog().table(0).stats;
  EXPECT_GT(stats.columns[2].null_fraction, 0.3);
  // Zipf: the hottest value dominates.
  uint64_t hottest = 0;
  std::map<int64_t, uint64_t> counts;
  r.ValueOrDie().heap(0).Scan(
      [&](storage::RowId, const storage::Row& row) {
        if (!row[1].is_null()) {
          hottest = std::max(hottest, ++counts[row[1].AsInt()]);
        }
        return true;
      });
  EXPECT_GT(hottest, 100u);  // >> 2000/100 uniform expectation
}

TEST(SchemaSpecTest, Errors) {
  EXPECT_FALSE(BuildDatabaseFromSpec("GARBAGE directive").ok());
  EXPECT_FALSE(BuildDatabaseFromSpec("TABLE t id INT").ok());  // no parens
  EXPECT_FALSE(BuildDatabaseFromSpec(
                   "TABLE t (id INT PK)\nROWS missing 10")
                   .ok());
  EXPECT_FALSE(
      BuildDatabaseFromSpec("TABLE t (id WEIRDTYPE PK)").ok());
  EXPECT_FALSE(BuildDatabaseFromSpec(
                   "TABLE t (id INT PK)\nINDEX t (nope)")
                   .ok());
  EXPECT_FALSE(BuildDatabaseFromSpec(
                   "TABLE t (id INT PK)\nROWS t 10 id:wat=1")
                   .ok());
}

TEST(WorkloadSpecTest, ParsesWeightsAndSql) {
  const char* text = R"(
# comment
500 SELECT id FROM users WHERE org_id = 7
 25 UPDATE users SET score = 1 WHERE id = 3
)";
  Result<Workload> r = ParseWorkloadSpec(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().queries[0].weight, 500.0);
  EXPECT_TRUE(r.ValueOrDie().queries[1].stmt.is_dml());
}

TEST(WorkloadSpecTest, Errors) {
  EXPECT_FALSE(ParseWorkloadSpec("SELECT missing weight").ok());
  EXPECT_FALSE(ParseWorkloadSpec("12").ok());             // no SQL
  EXPECT_FALSE(ParseWorkloadSpec("5 SELEC nonsense").ok());  // bad SQL
}

TEST(SpecIntegrationTest, EndToEndAdvisable) {
  Result<storage::Database> db = BuildDatabaseFromSpec(kSchema);
  ASSERT_TRUE(db.ok());
  Result<Workload> w = ParseWorkloadSpec(
      "100 SELECT id FROM users WHERE joined = 42\n");
  ASSERT_TRUE(w.ok());
  optimizer::WhatIfOptimizer what_if(db.ValueOrDie().catalog(),
                                     optimizer::CostModel());
  const sql::Statement& stmt = w.ValueOrDie().queries[0].stmt;
  const double base = what_if.QueryCost(stmt).ValueOrDie();
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {4};  // joined
  ASSERT_TRUE(what_if.SetConfiguration({def}).ok());
  EXPECT_LT(what_if.QueryCost(stmt).ValueOrDie(), base);
}

}  // namespace
}  // namespace aim::workload
