#include <gtest/gtest.h>

#include <set>

#include "core/candidate_generation.h"
#include "optimizer/predicate.h"
#include "tests/test_util.h"

namespace aim::core {
namespace {

using aim::testing::MustQuery;

/// Fixture schema mirrors the paper's running examples: tables t1/t2/t3
/// with columns id (PK), col1..col7.
struct Fixture {
  storage::Database db;
  optimizer::WhatIfOptimizer what_if;
  CandidateGenerator gen;

  explicit Fixture(CandidateGenOptions options = {})
      : db(MakeDb()), what_if(db.catalog(), optimizer::CostModel()),
        gen(db.catalog(), &what_if, options) {}

  static storage::Database MakeDb() {
    storage::Database db;
    Rng rng(3);
    for (int t = 1; t <= 3; ++t) {
      catalog::TableDef def;
      def.name = "t" + std::to_string(t);
      catalog::ColumnDef id;
      id.name = "id";
      id.type = catalog::ColumnType::kInt64;
      id.avg_width = 8;
      def.columns.push_back(id);
      for (int c = 1; c <= 7; ++c) {
        catalog::ColumnDef col;
        col.name = "col" + std::to_string(c);
        col.type = catalog::ColumnType::kInt64;
        col.avg_width = 8;
        def.columns.push_back(col);
      }
      def.primary_key = {0};
      const catalog::TableId tid = db.CreateTable(std::move(def));
      std::vector<storage::ColumnSpec> specs(8);
      for (int c = 1; c <= 7; ++c) {
        specs[c].ndv = 10 * c;
      }
      (void)storage::GenerateRows(&db, tid, 1000, specs, &rng);
    }
    db.AnalyzeAll();
    return db;
  }

  optimizer::AnalyzedQuery Analyze(const workload::Query& q) {
    Result<optimizer::AnalyzedQuery> r =
        optimizer::Analyze(q.stmt, db.catalog());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.MoveValue() : optimizer::AnalyzedQuery{};
  }
};

bool HasOrder(const std::vector<PartialOrder>& orders,
              const PartialOrder& want) {
  for (const PartialOrder& po : orders) {
    if (po.CanonicalKey() == want.CanonicalKey()) return true;
  }
  return false;
}

PartialOrder PO(catalog::TableId table,
                std::vector<std::vector<catalog::ColumnId>> parts) {
  return PartialOrder::FromPartitions(table, std::move(parts));
}

// Column ids in the fixture: id=0, col1=1, ..., col7=7.

TEST(CandidateGenTest, SimpleEqualityPredicate) {
  // E1 (Sec. IV-B): col1 = ? AND col2 = ? AND col3 = ?
  // -> <{col1, col2, col3}>.
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col5 FROM t1 WHERE col1 = 1 AND col2 = 2 AND col3 = 3");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  EXPECT_TRUE(HasOrder(orders, PO(0, {{1, 2, 3}})))
      << "missing <{col1,col2,col3}>";
}

TEST(CandidateGenTest, PaperExampleE2OrChain) {
  // E2: (col1=? AND col2=? AND col3=?) OR (col2=? AND col4=?)
  // -> <{col1,col2,col3}> and <{col2,col4}>.
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col5 FROM t1 WHERE (col1 = 1 AND col2 = 2 AND col3 = 3) "
      "OR (col2 = 4 AND col4 = 5)");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  EXPECT_TRUE(HasOrder(orders, PO(0, {{1, 2, 3}})));
  EXPECT_TRUE(HasOrder(orders, PO(0, {{2, 4}})));
}

TEST(CandidateGenTest, PaperExampleE3RangeResidual) {
  // E3: col1 = 5 AND col2 = 2 AND col3 > 5 AND col4 < 2
  // -> <{col1,col2},{one of col3/col4 chosen via dataless cost}>.
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col5 FROM t1 WHERE col1 = 5 AND col2 = 2 AND col3 > 5 "
      "AND col4 < 2");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(orders.size(), 1u);
  const auto& parts = orders[0].partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (PartialOrder::Partition{1, 2}));
  ASSERT_EQ(parts[1].size(), 1u);
  EXPECT_TRUE(parts[1][0] == 3 || parts[1][0] == 4);
  EXPECT_GT(f.gen.dataless_cost_calls(), 0u);
}

TEST(CandidateGenTest, ProjectionCoveringExample) {
  // Q1 (Sec. IV-A): SELECT col2, col3 FROM t1 WHERE col5 < 2
  // -> <{col5}, {col2, col3}> in covering mode.
  Fixture f;
  workload::Query q =
      MustQuery("SELECT col2, col3 FROM t1 WHERE col5 < 2");
  auto aq = f.Analyze(q);
  auto covering = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kCovering);
  EXPECT_TRUE(HasOrder(covering, PO(0, {{5}, {2, 3}})));
  auto non_covering = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  EXPECT_TRUE(HasOrder(non_covering, PO(0, {{5}})));
}

TEST(CandidateGenTest, GroupByNonCovering) {
  // Q3: SELECT col3, COUNT(*) FROM t1 GROUP BY col3 -> <{col3}>.
  Fixture f;
  workload::Query q =
      MustQuery("SELECT col3, COUNT(*) FROM t1 GROUP BY col3");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForGroupBy(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_TRUE(HasOrder(orders, PO(0, {{3}})));
}

TEST(CandidateGenTest, GroupByCoveringQ4) {
  // Q4: SELECT col3, SUM(col1) FROM t1 WHERE col2 = 5 GROUP BY col3
  // -> <{col2}, {col3}, {col1}> (Sec. IV-D).
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col3, SUM(col1) FROM t1 WHERE col2 = 5 GROUP BY col3");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForGroupBy(
      q, aq, 2, CoveringMode::kCovering);
  EXPECT_TRUE(HasOrder(orders, PO(0, {{2}, {3}, {1}})));
}

TEST(CandidateGenTest, OrderByNonCoveringSequence) {
  // Q5-style: ORDER BY col6 yields the sequence <col6>.
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col1 FROM t1 WHERE col5 IN (1, 2) ORDER BY col6 LIMIT 10");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForOrderBy(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_TRUE(HasOrder(orders, PO(0, {{6}})));
}

TEST(CandidateGenTest, OrderByCoveringIncludesIppPrefix) {
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col1 FROM t1 WHERE col5 = 3 ORDER BY col6 LIMIT 10");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForOrderBy(
      q, aq, 2, CoveringMode::kCovering);
  // <{col5}, {col6}, {col1}>: IPP prefix, then order column, then the
  // remaining referenced column.
  EXPECT_TRUE(HasOrder(orders, PO(0, {{5}, {6}, {1}})));
}

TEST(CandidateGenTest, MultiColumnOrderByPreservesSequence) {
  Fixture f;
  workload::Query q =
      MustQuery("SELECT col1 FROM t1 ORDER BY col6, col2 LIMIT 5");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForOrderBy(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(orders.size(), 1u);
  ASSERT_EQ(orders[0].partitions().size(), 2u);
  EXPECT_TRUE(orders[0].Precedes(6, 2));
}

TEST(CandidateGenTest, JoinedTablesPowersetRespectsJ) {
  // Q2 (Sec. IV-C): t1.col2 = t3.col2 AND t2.col4 = t3.col7: t3 has two
  // join partners.
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT t1.col1, t2.col2, t3.col3 FROM t1, t2, t3 WHERE "
      "t1.col2 = t3.col2 AND t2.col4 = t3.col7");
  auto aq = f.Analyze(q);
  // t3 is instance 2.
  auto with_j2 = f.gen.JoinedTablesPowerset(aq, 2, 2);
  EXPECT_EQ(with_j2.size(), 4u);  // {}, {t1}, {t2}, {t1,t2}
  auto with_j1 = f.gen.JoinedTablesPowerset(aq, 2, 1);
  ASSERT_EQ(with_j1.size(), 1u);  // partner count exceeds j: only {}
  EXPECT_TRUE(with_j1[0].empty());
  // t1 has a single partner (t3), under both j values.
  EXPECT_EQ(f.gen.JoinedTablesPowerset(aq, 0, 1).size(), 2u);
}

TEST(CandidateGenTest, JoinColumnsBecomeIppCandidates) {
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT t1.col1, t2.col2, t3.col3 FROM t1, t2, t3 WHERE "
      "t1.col2 = t3.col2 AND t2.col4 = t3.col7");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  // t3 (table id 2) should get a candidate on both join columns
  // {col2, col7} to support join orders where t3 is probed last.
  EXPECT_TRUE(HasOrder(orders, PO(2, {{2, 7}})));
  // And single-column candidates for the other tables' join keys.
  EXPECT_TRUE(HasOrder(orders, PO(0, {{2}})));
  EXPECT_TRUE(HasOrder(orders, PO(1, {{4}})));
}

TEST(CandidateGenTest, JoinParameterLimitsExploration) {
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT t1.col1, t2.col2, t3.col3 FROM t1, t2, t3 WHERE "
      "t1.col2 = t3.col2 AND t2.col4 = t3.col7");
  auto aq = f.Analyze(q);
  auto j1 = f.gen.GenerateCandidatesForSelection(
      q, aq, 1, CoveringMode::kNonCovering);
  auto j2 = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  // j=1 cannot produce t3's two-column join-support candidate.
  EXPECT_FALSE(HasOrder(j1, PO(2, {{2, 7}})));
  EXPECT_TRUE(HasOrder(j2, PO(2, {{2, 7}})));
  EXPECT_GE(j2.size(), j1.size());
}

TEST(CandidateGenTest, FilterPlusJoinComposite) {
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT t1.col1 FROM t1, t2 WHERE t1.col3 = t2.col3 AND "
      "t1.col5 = 4");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  // With S={t2}: t1's candidate combines filter col5 and join col3.
  EXPECT_TRUE(HasOrder(orders, PO(0, {{3, 5}})));
  // With S={}: filter-only candidate.
  EXPECT_TRUE(HasOrder(orders, PO(0, {{5}})));
}

TEST(CandidateGenTest, GenerateForQueryCombinesGenerators) {
  Fixture f;
  workload::Query q = MustQuery(
      "SELECT col1, COUNT(*) FROM t1 WHERE col2 = 1 GROUP BY col1");
  auto aq = f.Analyze(q);
  auto orders = f.gen.GenerateForQuery(q, aq, nullptr);
  // Selection candidate <{col2}> and group candidate <{col1}>.
  EXPECT_TRUE(HasOrder(orders, PO(0, {{2}})));
  EXPECT_TRUE(HasOrder(orders, PO(0, {{1}})));
}

TEST(CandidateGenTest, GenerateCandidateIndexPerPO) {
  Fixture f;
  std::vector<PartialOrder> orders = {PO(0, {{2, 1}, {3}}),
                                      PO(1, {{4}})};
  auto defs = f.gen.GenerateCandidateIndexPerPO(orders);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].table, 0u);
  EXPECT_EQ(defs[0].columns,
            (std::vector<catalog::ColumnId>{1, 2, 3}));
  EXPECT_EQ(defs[1].table, 1u);
}

TEST(CandidateGenTest, PerPoSkipsPkPrefix) {
  Fixture f;
  std::vector<PartialOrder> orders = {PO(0, {{0}})};  // index on id (PK)
  EXPECT_TRUE(f.gen.GenerateCandidateIndexPerPO(orders).empty());
}

TEST(CandidateGenTest, PerPoTruncatesToMaxWidth) {
  CandidateGenOptions options;
  options.max_index_width = 2;
  Fixture f(options);
  std::vector<PartialOrder> orders = {PO(0, {{1}, {2}, {3}, {4}})};
  auto defs = f.gen.GenerateCandidateIndexPerPO(orders);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].columns.size(), 2u);
}

TEST(CandidateGenTest, PerPoDeduplicatesEquivalentOrders) {
  Fixture f;
  std::vector<PartialOrder> orders = {PO(0, {{1, 2}}), PO(0, {{1}, {2}})};
  // Both produce total order (col1, col2).
  EXPECT_EQ(f.gen.GenerateCandidateIndexPerPO(orders).size(), 1u);
}

TEST(CandidateGenTest, TryCoveringRequiresExistingSelectivity) {
  // With no indexes at all, TryCoveringIndex must say non-covering.
  Fixture f;
  workload::Query q =
      MustQuery("SELECT col2 FROM t1 WHERE col1 = 3");
  auto aq = f.Analyze(q);
  EXPECT_EQ(f.gen.TryCoveringIndex(q, aq, nullptr),
            CoveringMode::kNonCovering);
}

TEST(CandidateGenTest, TryCoveringTriggersWithIndexAndSeekVolume) {
  CandidateGenOptions options;
  options.covering_seek_threshold = 10.0;
  Fixture f(options);
  // Existing index on col3 in the generator's catalog; bump col3's
  // selectivity so each execution fetches a handful of rows via PK.
  f.db.catalog().mutable_table(0)->stats.columns[3].ndv = 500;
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {3};
  ASSERT_TRUE(f.db.catalog().AddIndex(def).ok());
  workload::Query q =
      MustQuery("SELECT col2 FROM t1 WHERE col3 = 7");
  auto aq = f.Analyze(q);
  workload::QueryStats stats;
  stats.executions = 100;
  EXPECT_EQ(f.gen.TryCoveringIndex(q, aq, &stats),
            CoveringMode::kCovering);
}

TEST(CandidateGenTest, GenerateForWorkloadMerges) {
  Fixture f;
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT col5 FROM t1 WHERE col1 = 1 AND col2 = 2 "
                    "AND col3 = 3")
                  .ok());
  ASSERT_TRUE(w.Add("SELECT col5 FROM t1 WHERE col2 = 2 AND col3 = 3")
                  .ok());
  CandidateGenerator gen(f.db.catalog(), &f.what_if, CandidateGenOptions{});
  Result<std::vector<PartialOrder>> merged =
      gen.GenerateForWorkload(w, nullptr);
  ASSERT_TRUE(merged.ok());
  // The merged order <{col2,col3},{col1}> must be present (Sec. III-E).
  EXPECT_TRUE(HasOrder(merged.ValueOrDie(), PO(0, {{2, 3}, {1}})));
}

TEST(CandidateGenTest, DmlWhereClausesGenerateCandidates) {
  Fixture f;
  workload::Workload w;
  ASSERT_TRUE(w.Add("UPDATE t1 SET col7 = 1 WHERE col2 = 3").ok());
  CandidateGenerator gen(f.db.catalog(), &f.what_if, CandidateGenOptions{});
  Result<std::vector<PartialOrder>> orders =
      gen.GenerateForWorkload(w, nullptr);
  ASSERT_TRUE(orders.ok());
  EXPECT_TRUE(HasOrder(orders.ValueOrDie(), PO(0, {{2}})));
}

}  // namespace
}  // namespace aim::core
