#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tests/test_util.h"

namespace aim::storage {
namespace {

using sql::Value;

TEST(HeapTableTest, InsertAndScan) {
  HeapTable heap;
  RowId a = heap.Insert({Value::Int(1)});
  RowId b = heap.Insert({Value::Int(2)});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(heap.live_count(), 2u);
  int seen = 0;
  uint64_t visited = heap.Scan([&](RowId, const Row&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(visited, 2u);
}

TEST(HeapTableTest, DeleteTombstones) {
  HeapTable heap;
  RowId a = heap.Insert({Value::Int(1)});
  heap.Insert({Value::Int(2)});
  ASSERT_TRUE(heap.Delete(a).ok());
  EXPECT_FALSE(heap.IsLive(a));
  EXPECT_EQ(heap.live_count(), 1u);
  EXPECT_EQ(heap.slot_count(), 2u);
  EXPECT_FALSE(heap.Delete(a).ok());    // double delete
  EXPECT_FALSE(heap.Update(a, {}).ok());  // update dead row
}

TEST(HeapTableTest, ScanEarlyStop) {
  HeapTable heap;
  for (int i = 0; i < 10; ++i) heap.Insert({Value::Int(i)});
  int seen = 0;
  heap.Scan([&](RowId, const Row&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(HeapTableTest, UpdateReplacesRow) {
  HeapTable heap;
  RowId a = heap.Insert({Value::Int(1)});
  ASSERT_TRUE(heap.Update(a, {Value::Int(99)}).ok());
  EXPECT_EQ(heap.row(a)[0].AsInt(), 99);
}

TEST(BTreeIndexTest, PrefixScanExactMatch) {
  BTreeIndex idx;
  idx.Insert({Value::Int(1), Value::Int(10)}, 0);
  idx.Insert({Value::Int(1), Value::Int(20)}, 1);
  idx.Insert({Value::Int(2), Value::Int(10)}, 2);
  std::vector<RowId> hits;
  idx.ScanPrefix({Value::Int(1)}, std::nullopt, std::nullopt,
                 [&](const Row&, RowId rid) {
                   hits.push_back(rid);
                   return true;
                 });
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
}

TEST(BTreeIndexTest, RangeBounds) {
  BTreeIndex idx;
  for (int i = 0; i < 10; ++i) {
    idx.Insert({Value::Int(1), Value::Int(i)}, i);
  }
  std::vector<RowId> hits;
  idx.ScanPrefix({Value::Int(1)},
                 KeyBound{Value::Int(3), /*inclusive=*/true},
                 KeyBound{Value::Int(6), /*inclusive=*/false},
                 [&](const Row&, RowId rid) {
                   hits.push_back(rid);
                   return true;
                 });
  EXPECT_EQ(hits, (std::vector<RowId>{3, 4, 5}));
}

TEST(BTreeIndexTest, ExclusiveLowerBound) {
  BTreeIndex idx;
  for (int i = 0; i < 5; ++i) {
    idx.Insert({Value::Int(1), Value::Int(i)}, i);
  }
  std::vector<RowId> hits;
  idx.ScanPrefix({Value::Int(1)},
                 KeyBound{Value::Int(2), /*inclusive=*/false}, std::nullopt,
                 [&](const Row&, RowId rid) {
                   hits.push_back(rid);
                   return true;
                 });
  EXPECT_EQ(hits, (std::vector<RowId>{3, 4}));
}

TEST(BTreeIndexTest, EraseSpecificEntry) {
  BTreeIndex idx;
  idx.Insert({Value::Int(1)}, 0);
  idx.Insert({Value::Int(1)}, 1);
  EXPECT_TRUE(idx.Erase({Value::Int(1)}, 0));
  EXPECT_FALSE(idx.Erase({Value::Int(1)}, 0));
  EXPECT_EQ(idx.entry_count(), 1u);
}

TEST(BTreeIndexTest, EmptyPrefixScansAll) {
  BTreeIndex idx;
  for (int i = 0; i < 5; ++i) idx.Insert({Value::Int(i)}, i);
  int count = 0;
  idx.ScanPrefix({}, std::nullopt, std::nullopt,
                 [&](const Row&, RowId) {
                   ++count;
                   return true;
                 });
  EXPECT_EQ(count, 5);
}

TEST(BTreeIndexTest, StringKeys) {
  BTreeIndex idx;
  idx.Insert({Value::Str("apple")}, 0);
  idx.Insert({Value::Str("banana")}, 1);
  idx.Insert({Value::Str("apricot")}, 2);
  std::vector<RowId> hits;
  idx.ScanPrefix({}, KeyBound{Value::Str("ap"), true},
                 KeyBound{Value::Str("aq"), false},
                 [&](const Row&, RowId rid) {
                   hits.push_back(rid);
                   return true;
                 });
  EXPECT_EQ(hits, (std::vector<RowId>{0, 2}));
}

TEST(DatabaseTest, CreateIndexMaterializes) {
  Database db = aim::testing::MakeUsersDb(500);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};  // org_id
  Result<catalog::IndexId> id = db.CreateIndex(def);
  ASSERT_TRUE(id.ok());
  const BTreeIndex* btree = db.btree(id.ValueOrDie());
  ASSERT_NE(btree, nullptr);
  EXPECT_EQ(btree->entry_count(), 500u);
}

TEST(DatabaseTest, HypotheticalIndexHasNoBTree) {
  Database db = aim::testing::MakeUsersDb(100);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  def.hypothetical = true;
  Result<catalog::IndexId> id = db.CreateIndex(def);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(db.btree(id.ValueOrDie()), nullptr);
}

TEST(DatabaseTest, InsertMaintainsIndexes) {
  Database db = aim::testing::MakeUsersDb(100);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2};  // status
  catalog::IndexId id = db.CreateIndex(def).ValueOrDie();
  MaintenanceCost mc;
  Row row = db.heap(0).row(0);
  row[0] = Value::Int(100000);
  ASSERT_TRUE(db.InsertRow(0, row, &mc).ok());
  // The secondary index plus the clustered primary index.
  EXPECT_EQ(mc.index_entries_written, 2u);
  EXPECT_EQ(db.btree(id)->entry_count(), 101u);
}

TEST(DatabaseTest, UpdateOnlyTouchesAffectedIndexes) {
  Database db = aim::testing::MakeUsersDb(100);
  catalog::IndexDef on_status;
  on_status.table = 0;
  on_status.columns = {2};
  catalog::IndexDef on_org;
  on_org.table = 0;
  on_org.columns = {1};
  db.CreateIndex(on_status).ValueOrDie();
  db.CreateIndex(on_org).ValueOrDie();

  Row row = db.heap(0).row(0);
  row[2] = Value::Int(row[2].AsInt() + 1000);  // change status only
  MaintenanceCost mc;
  ASSERT_TRUE(db.UpdateRow(0, 0, row, &mc).ok());
  EXPECT_EQ(mc.indexes_touched, 1u);
  EXPECT_EQ(mc.index_entries_written, 2u);  // delete + insert
}

TEST(DatabaseTest, DeleteRemovesFromAllIndexes) {
  Database db = aim::testing::MakeUsersDb(100);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2};
  catalog::IndexId id = db.CreateIndex(def).ValueOrDie();
  MaintenanceCost mc;
  ASSERT_TRUE(db.DeleteRow(0, 0, &mc).ok());
  EXPECT_EQ(db.btree(id)->entry_count(), 99u);
  EXPECT_EQ(db.heap(0).live_count(), 99u);
}

TEST(DatabaseTest, DropIndexRemovesBTree) {
  Database db = aim::testing::MakeUsersDb(100);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  catalog::IndexId id = db.CreateIndex(def).ValueOrDie();
  ASSERT_TRUE(db.DropIndex(id).ok());
  EXPECT_EQ(db.btree(id), nullptr);
  EXPECT_EQ(db.catalog().index(id), nullptr);
}

TEST(DatabaseTest, DeepCopyIsolation) {
  Database db = aim::testing::MakeUsersDb(100);
  Database copy = db;
  MaintenanceCost mc;
  ASSERT_TRUE(copy.DeleteRow(0, 0, &mc).ok());
  EXPECT_EQ(db.heap(0).live_count(), 100u);
  EXPECT_EQ(copy.heap(0).live_count(), 99u);
}

TEST(DatabaseTest, AnalyzeRefreshesStats) {
  Database db = aim::testing::MakeUsersDb(1000);
  const auto& stats = db.catalog().table(0).stats;
  EXPECT_EQ(stats.row_count, 1000u);
  // org_id has ndv 100 by construction.
  EXPECT_NEAR(static_cast<double>(stats.columns[1].ndv), 100.0, 10.0);
  // status has ndv 5.
  EXPECT_LE(stats.columns[2].ndv, 5u);
  // id is unique.
  EXPECT_EQ(stats.columns[0].ndv, 1000u);
}

TEST(DatabaseTest, RowArityValidated) {
  Database db = aim::testing::MakeUsersDb(10);
  EXPECT_FALSE(db.InsertRow(0, {Value::Int(1)}).ok());
  EXPECT_FALSE(db.InsertRow(99, {}).ok());
}

TEST(DataGeneratorTest, SequentialPkIsUnique) {
  Database db = aim::testing::MakeUsersDb(500);
  std::set<int64_t> ids;
  db.heap(0).Scan([&](RowId, const Row& row) {
    ids.insert(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(ids.size(), 500u);
}

TEST(DataGeneratorTest, NdvRoughlyRespected) {
  Database db = aim::testing::MakeUsersDb(2000);
  std::set<int64_t> statuses;
  db.heap(0).Scan([&](RowId, const Row& row) {
    statuses.insert(row[2].AsInt());
    return true;
  });
  EXPECT_LE(statuses.size(), 5u);
  EXPECT_GE(statuses.size(), 2u);
}

TEST(DataGeneratorTest, ZipfSkewsValues) {
  Database db = aim::testing::MakeUsersDb(5000);
  std::map<int64_t, int> counts;
  db.heap(0).Scan([&](RowId, const Row& row) {
    counts[row[3].AsInt()]++;  // score: zipf(1000, 0.6)
    return true;
  });
  // The most frequent value should appear far more often than uniform
  // (5000/1000 = 5 expected under uniform).
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50);
}

TEST(DataGeneratorTest, StringColumnsGetPrefix) {
  Database db = aim::testing::MakeUsersDb(50);
  db.heap(0).Scan([&](RowId, const Row& row) {
    EXPECT_EQ(row[5].AsString().rfind("user", 0), 0u);
    return true;
  });
}

}  // namespace
}  // namespace aim::storage
