#include <gtest/gtest.h>

#include "core/aim.h"
#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

constexpr const char* kOrSql =
    "SELECT id FROM users WHERE (org_id = 3 AND status = 1) OR "
    "(created_at BETWEEN 100 AND 120)";

catalog::IndexId AddIndex(storage::Database* db,
                          std::vector<catalog::ColumnId> cols) {
  catalog::IndexDef def;
  def.table = 0;
  def.columns = std::move(cols);
  return db->CreateIndex(def).ValueOrDie();
}

optimizer::Plan PlanWith(const storage::Database& db,
                         const std::string& sql,
                         optimizer::OptimizeOptions options = {}) {
  optimizer::Optimizer opt(db.catalog(), optimizer::CostModel());
  Result<optimizer::Plan> r = opt.Optimize(MustParse(sql), options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : optimizer::Plan{};
}

TEST(IndexMergeTest, OptimizerChoosesUnionWhenBothArmsIndexed) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 2});  // (org_id, status)
  AddIndex(&db, {4});     // created_at
  optimizer::Plan plan = PlanWith(db, kOrSql);
  ASSERT_EQ(plan.steps.size(), 1u);
  ASSERT_TRUE(plan.steps[0].path.is_index_merge());
  EXPECT_EQ(plan.steps[0].path.union_parts.size(), 2u);
  const std::string desc = plan.Describe(db.catalog());
  EXPECT_NE(desc.find("index_merge"), std::string::npos);
}

TEST(IndexMergeTest, UnionRequiresEveryArmIndexed) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 2});  // only the first arm has an index
  optimizer::Plan plan = PlanWith(db, kOrSql);
  EXPECT_FALSE(plan.steps[0].path.is_index_merge());
  EXPECT_TRUE(plan.steps[0].path.is_full_scan());
}

TEST(IndexMergeTest, SwitchDisablesUnion) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 2});
  AddIndex(&db, {4});
  optimizer::OptimizeOptions options;
  options.switches.index_merge_union = false;
  optimizer::Plan plan = PlanWith(db, kOrSql, options);
  EXPECT_FALSE(plan.steps[0].path.is_index_merge());
}

TEST(IndexMergeTest, NotUsedWithConjunctiveSkeleton) {
  // A top-level conjunct makes a single-index plan preferable; the union
  // only fires for pure disjunctions.
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1});
  AddIndex(&db, {4});
  optimizer::Plan plan = PlanWith(
      db,
      "SELECT id FROM users WHERE org_id = 3 AND (status = 1 OR "
      "created_at > 100)");
  EXPECT_FALSE(plan.steps[0].path.is_index_merge());
}

TEST(IndexMergeTest, ExecutorUnionMatchesBruteForce) {
  storage::Database db = MakeUsersDb(3000);
  const auto count_expected = [&]() {
    uint64_t n = 0;
    db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
      const bool arm1 = row[1].AsInt() == 3 && row[2].AsInt() == 1;
      const bool arm2 =
          row[4].AsInt() >= 100 && row[4].AsInt() <= 120;
      if (arm1 || arm2) ++n;
      return true;
    });
    return n;
  };
  executor::Executor exec(&db, optimizer::CostModel());
  const uint64_t expected = count_expected();
  Result<executor::ExecuteResult> scan = exec.Execute(MustParse(kOrSql));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().rows.size(), expected);

  AddIndex(&db, {1, 2});
  AddIndex(&db, {4});
  Result<executor::ExecuteResult> merged = exec.Execute(MustParse(kOrSql));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.ValueOrDie().rows.size(), expected);
  // The union examines far fewer rows than the scan.
  EXPECT_LT(merged.ValueOrDie().metrics.rows_examined,
            scan.ValueOrDie().metrics.rows_examined / 2);
  EXPECT_EQ(merged.ValueOrDie().metrics.used_indexes.size(), 2u);
}

TEST(IndexMergeTest, ExecutorDedupsOverlappingArms) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {1});
  AddIndex(&db, {2});
  // The arms overlap heavily (org_id = 3 rows often have status = 1).
  const char* sql =
      "SELECT id FROM users WHERE (org_id = 3) OR (status = 1)";
  uint64_t expected = 0;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (row[1].AsInt() == 3 || row[2].AsInt() == 1) ++expected;
    return true;
  });
  executor::Executor exec(&db, optimizer::CostModel());
  Result<executor::ExecuteResult> r = exec.Execute(MustParse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), expected);  // no duplicates
}

TEST(IndexMergeTest, AimRecommendsPerFactorIndexes) {
  // The paper's E2 pattern: AIM emits one candidate per DNF factor and,
  // with index-merge available, both factors' indexes earn benefit.
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w;
  ASSERT_TRUE(w.Add(kOrSql, 100.0).ok());
  core::AimOptions options;
  options.validate_on_clone = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  bool has_org_arm = false;
  bool has_created_arm = false;
  for (const auto& c : r.ValueOrDie().recommended) {
    if (!c.def.columns.empty() && c.def.columns[0] == 1) {
      has_org_arm = true;
    }
    if (!c.def.columns.empty() && c.def.columns[0] == 4) {
      has_created_arm = true;
    }
  }
  EXPECT_TRUE(has_org_arm);
  EXPECT_TRUE(has_created_arm);
}

// ---------- switch awareness -------------------------------------------------

TEST(SwitchesTest, CandidateGenSkipsOrFactorsWhenMergeOff) {
  storage::Database db = MakeUsersDb(1000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  core::CandidateGenOptions gen_options;
  gen_options.switches.index_merge_union = false;
  core::CandidateGenerator gen(db.catalog(), &what_if, gen_options);
  workload::Query q = aim::testing::MustQuery(kOrSql);
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();
  auto orders = gen.GenerateCandidatesForSelection(
      q, aq, 2, core::CoveringMode::kNonCovering);
  // A pure OR has an empty conjunctive skeleton: nothing to index.
  EXPECT_TRUE(orders.empty());

  core::CandidateGenOptions on;
  core::CandidateGenerator gen_on(db.catalog(), &what_if, on);
  EXPECT_EQ(gen_on
                .GenerateCandidatesForSelection(
                    q, aq, 2, core::CoveringMode::kNonCovering)
                .size(),
            2u);
}

TEST(SwitchesTest, CandidateGenSkipsOrderByWhenSortAvoidanceOff) {
  storage::Database db = MakeUsersDb(1000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  core::CandidateGenOptions gen_options;
  gen_options.switches.sort_avoidance = false;
  core::CandidateGenerator gen(db.catalog(), &what_if, gen_options);
  workload::Query q = aim::testing::MustQuery(
      "SELECT id FROM users ORDER BY created_at LIMIT 5");
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();
  EXPECT_TRUE(gen.GenerateCandidatesForOrderBy(
                     q, aq, 2, core::CoveringMode::kNonCovering)
                  .empty());
  workload::Query g = aim::testing::MustQuery(
      "SELECT status, COUNT(*) FROM users GROUP BY status");
  auto aqg = optimizer::Analyze(g.stmt, db.catalog()).MoveValue();
  EXPECT_TRUE(gen.GenerateCandidatesForGroupBy(
                     g, aqg, 2, core::CoveringMode::kNonCovering)
                  .empty());
}

TEST(SwitchesTest, SortAvoidanceOffForcesSort) {
  storage::Database db = MakeUsersDb(2000);
  AddIndex(&db, {4});
  optimizer::OptimizeOptions off;
  off.switches.sort_avoidance = false;
  optimizer::Plan forced = PlanWith(
      db, "SELECT id FROM users ORDER BY created_at LIMIT 5", off);
  EXPECT_TRUE(forced.needs_sort);
  optimizer::Plan normal =
      PlanWith(db, "SELECT id FROM users ORDER BY created_at LIMIT 5");
  EXPECT_FALSE(normal.needs_sort);
  EXPECT_LT(normal.total_cost(), forced.total_cost());
}

TEST(SwitchesTest, IcpOffRaisesEstimatedFetches) {
  storage::Database db = MakeUsersDb(5000);
  AddIndex(&db, {1, 4});  // (org_id, created_at): created_at filtered but
                          // not a prefix -> ICP territory
  const char* sql =
      "SELECT email FROM users WHERE org_id = 3 AND created_at < 100";
  optimizer::Plan with_icp = PlanWith(db, sql);
  optimizer::OptimizeOptions off;
  off.switches.index_condition_pushdown = false;
  optimizer::Plan without_icp = PlanWith(db, sql, off);
  // Wait: (org_id, created_at) makes created_at the range column, not an
  // ICP residual. Use an index where the filter column sits deeper.
  (void)with_icp;
  (void)without_icp;

  storage::Database db2 = MakeUsersDb(5000);
  AddIndex(&db2, {1, 2, 4});  // created_at behind an unconstrained status
  const char* sql2 =
      "SELECT email FROM users WHERE org_id = 3 AND created_at < 100";
  optimizer::Plan icp_on = PlanWith(db2, sql2);
  optimizer::OptimizeOptions off2;
  off2.switches.index_condition_pushdown = false;
  optimizer::Plan icp_off = PlanWith(db2, sql2, off2);
  ASSERT_FALSE(icp_on.steps[0].path.is_full_scan());
  EXPECT_LT(icp_on.steps[0].path.rows_fetched,
            icp_off.steps[0].path.rows_fetched);
  EXPECT_LE(icp_on.total_cost(), icp_off.total_cost());
}

}  // namespace
}  // namespace aim
