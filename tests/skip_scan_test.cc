// Index skip scan (MySQL 8 "skip scan range access", Sec. VIII-a):
// B+Tree-level group jumps, optimizer costing, executor correctness, and
// the feature switch.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustParse;
using sql::Value;

// ---------- Value sentinel ---------------------------------------------------

TEST(ValueMaxTest, SortsAfterEverything) {
  EXPECT_GT(Value::Max().Compare(Value::Int(INT64_MAX)), 0);
  EXPECT_GT(Value::Max().Compare(Value::Str("\xff\xff")), 0);
  EXPECT_GT(Value::Max().Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Max().Compare(Value::Max()), 0);
  EXPECT_LT(Value::Int(5).Compare(Value::Max()), 0);
}

// ---------- BTree ScanSkip ---------------------------------------------------

TEST(ScanSkipTest, VisitsEveryGroupOnce) {
  storage::BTreeIndex index;
  // Keys (g, v): groups 0..4, values 0..9 each.
  for (int64_t g = 0; g < 5; ++g) {
    for (int64_t v = 0; v < 10; ++v) {
      index.Insert({Value::Int(g), Value::Int(v)},
                   static_cast<storage::RowId>(g * 10 + v));
    }
  }
  uint64_t groups = 0;
  std::vector<storage::RowId> hits;
  index.ScanSkip(1, storage::KeyBound{Value::Int(3), true},
                 storage::KeyBound{Value::Int(4), true},
                 [&](const storage::Row&, storage::RowId rid) {
                   hits.push_back(rid);
                   return true;
                 },
                 &groups);
  EXPECT_EQ(groups, 5u);
  ASSERT_EQ(hits.size(), 10u);  // 2 qualifying values x 5 groups
  for (storage::RowId rid : hits) {
    const int64_t v = static_cast<int64_t>(rid) % 10;
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 4);
  }
}

TEST(ScanSkipTest, UnboundedScansWholeIndexGroupwise) {
  storage::BTreeIndex index;
  for (int64_t g = 0; g < 3; ++g) {
    for (int64_t v = 0; v < 4; ++v) {
      index.Insert({Value::Int(g), Value::Int(v)},
                   static_cast<storage::RowId>(g * 4 + v));
    }
  }
  uint64_t groups = 0;
  uint64_t visited = index.ScanSkip(
      1, std::nullopt, std::nullopt,
      [](const storage::Row&, storage::RowId) { return true; }, &groups);
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(visited, 12u);
}

TEST(ScanSkipTest, EarlyStopPropagates) {
  storage::BTreeIndex index;
  for (int64_t g = 0; g < 4; ++g) {
    index.Insert({Value::Int(g), Value::Int(1)},
                 static_cast<storage::RowId>(g));
  }
  int seen = 0;
  index.ScanSkip(1, std::nullopt, std::nullopt,
                 [&](const storage::Row&, storage::RowId) {
                   return ++seen < 2;
                 });
  EXPECT_EQ(seen, 2);
}

TEST(ScanSkipTest, StringGroups) {
  storage::BTreeIndex index;
  int rid = 0;
  for (const char* g : {"alpha", "beta", "gamma"}) {
    for (int64_t v = 0; v < 3; ++v) {
      index.Insert({Value::Str(g), Value::Int(v)}, rid++);
    }
  }
  uint64_t groups = 0;
  uint64_t visited = index.ScanSkip(
      1, storage::KeyBound{Value::Int(2), true}, std::nullopt,
      [](const storage::Row&, storage::RowId) { return true; }, &groups);
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(visited, 3u);  // one qualifying value per group
}

// ---------- optimizer --------------------------------------------------------

optimizer::Plan PlanWith(const storage::Database& db, const char* sql,
                         optimizer::OptimizeOptions options = {}) {
  optimizer::Optimizer opt(db.catalog(), optimizer::CostModel());
  return opt.Optimize(MustParse(sql), options).MoveValue();
}

TEST(SkipScanPlanTest, ChosenWhenLeadingColumnHasFewValues) {
  storage::Database db = MakeUsersDb(8000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 4};  // (status ndv 5, created_at quasi-unique)
  ASSERT_TRUE(db.CreateIndex(def).ok());
  // Filter on created_at only: without skip scan this index is useless.
  optimizer::Plan plan =
      PlanWith(db, "SELECT id FROM users WHERE created_at = 4242");
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_TRUE(plan.steps[0].path.skip_scan);
  EXPECT_EQ(plan.steps[0].path.skip_width, 1u);
}

TEST(SkipScanPlanTest, SwitchDisables) {
  storage::Database db = MakeUsersDb(8000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  optimizer::OptimizeOptions off;
  off.switches.index_skip_scan = false;
  optimizer::Plan plan = PlanWith(
      db, "SELECT id FROM users WHERE created_at = 4242", off);
  // Without skip scan the index may still serve as a covering skinny
  // scan, but never with group jumps — and it must examine everything.
  EXPECT_FALSE(plan.steps[0].path.skip_scan);
  EXPECT_GE(plan.steps[0].path.index_selectivity, 1.0);
  optimizer::Plan on = PlanWith(
      db, "SELECT id FROM users WHERE created_at = 4242");
  EXPECT_LT(on.total_cost(), plan.total_cost());
}

TEST(SkipScanPlanTest, NotChosenWhenLeadingColumnWide) {
  // Skipping over a quasi-unique column means one descent per row:
  // strictly worse than scanning.
  storage::Database db = MakeUsersDb(8000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {4, 2};  // (created_at quasi-unique, status)
  ASSERT_TRUE(db.CreateIndex(def).ok());
  optimizer::Plan plan =
      PlanWith(db, "SELECT id FROM users WHERE status = 2");
  EXPECT_FALSE(plan.steps[0].path.skip_scan);
}

TEST(SkipScanPlanTest, RealPrefixBeatsSkip) {
  storage::Database db = MakeUsersDb(8000);
  catalog::IndexDef skip_idx;
  skip_idx.table = 0;
  skip_idx.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(skip_idx).ok());
  catalog::IndexDef direct;
  direct.table = 0;
  direct.columns = {4};
  ASSERT_TRUE(db.CreateIndex(direct).ok());
  optimizer::Plan plan =
      PlanWith(db, "SELECT id FROM users WHERE created_at = 4242");
  ASSERT_FALSE(plan.steps[0].path.is_full_scan());
  EXPECT_FALSE(plan.steps[0].path.skip_scan);
  EXPECT_EQ(plan.steps[0].path.index->columns,
            (std::vector<catalog::ColumnId>{4}));
}

// ---------- executor ---------------------------------------------------------

TEST(SkipScanExecTest, ResultsMatchBruteForce) {
  storage::Database db = MakeUsersDb(6000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  executor::Executor exec(&db, optimizer::CostModel());
  const char* sql =
      "SELECT id FROM users WHERE created_at BETWEEN 100 AND 300";
  uint64_t expected = 0;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (row[4].AsInt() >= 100 && row[4].AsInt() <= 300) ++expected;
    return true;
  });
  Result<executor::ExecuteResult> r = exec.Execute(MustParse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), expected);
  // Far fewer entries touched than a 6000-row scan.
  EXPECT_LT(r.ValueOrDie().metrics.rows_examined, 2000u);
  EXPECT_EQ(r.ValueOrDie().metrics.used_indexes.size(), 1u);
}

TEST(SkipScanExecTest, EqualityPointLookupPerGroup) {
  storage::Database db = MakeUsersDb(6000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  executor::Executor exec(&db, optimizer::CostModel());
  const char* sql = "SELECT id FROM users WHERE created_at = 777";
  uint64_t expected = 0;
  db.heap(0).Scan([&](storage::RowId, const storage::Row& row) {
    if (row[4].AsInt() == 777) ++expected;
    return true;
  });
  Result<executor::ExecuteResult> r = exec.Execute(MustParse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), expected);
  EXPECT_LE(r.ValueOrDie().metrics.rows_examined, 10u);
}

TEST(SkipScanExecTest, ObservedBeatsFullScan) {
  storage::Database db = MakeUsersDb(6000);
  executor::Executor exec(&db, optimizer::CostModel());
  const char* sql = "SELECT id FROM users WHERE created_at = 777";
  const double scan_cpu =
      exec.Execute(MustParse(sql)).ValueOrDie().metrics.cpu_seconds;
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  const double skip_cpu =
      exec.Execute(MustParse(sql)).ValueOrDie().metrics.cpu_seconds;
  EXPECT_LT(skip_cpu, scan_cpu * 0.2);
}

}  // namespace
}  // namespace aim
