#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/statistics.h"

namespace aim::catalog {
namespace {

TableDef SimpleTable(const std::string& name, int columns) {
  TableDef def;
  def.name = name;
  for (int i = 0; i < columns; ++i) {
    ColumnDef c;
    c.name = "c" + std::to_string(i);
    c.type = ColumnType::kInt64;
    c.avg_width = 8;
    def.columns.push_back(c);
  }
  def.primary_key = {0};
  def.stats.row_count = 1000;
  def.stats.columns.resize(columns);
  return def;
}

TEST(CatalogTest, AddAndFindTable) {
  Catalog cat;
  TableId id = cat.AddTable(SimpleTable("users", 3));
  EXPECT_EQ(id, 0u);
  Result<TableId> found = cat.FindTable("USERS");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.ValueOrDie(), id);
  EXPECT_FALSE(cat.FindTable("ghosts").ok());
}

TEST(CatalogTest, FindColumnCaseInsensitive) {
  Catalog cat;
  TableId id = cat.AddTable(SimpleTable("t", 3));
  EXPECT_TRUE(cat.table(id).FindColumn("C1").has_value());
  EXPECT_FALSE(cat.table(id).FindColumn("zz").has_value());
}

TEST(CatalogTest, AddIndexAssignsIdAndName) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 3));
  IndexDef def;
  def.table = t;
  def.columns = {1, 2};
  Result<IndexId> id = cat.AddIndex(def);
  ASSERT_TRUE(id.ok());
  const IndexDef* stored = cat.index(id.ValueOrDie());
  ASSERT_NE(stored, nullptr);
  EXPECT_FALSE(stored->name.empty());
}

TEST(CatalogTest, DuplicateIndexRejected) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 3));
  IndexDef def;
  def.table = t;
  def.columns = {1};
  ASSERT_TRUE(cat.AddIndex(def).ok());
  Result<IndexId> dup = cat.AddIndex(def);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), Status::Code::kAlreadyExists);
}

TEST(CatalogTest, IndexValidation) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 3));
  IndexDef empty;
  empty.table = t;
  EXPECT_FALSE(cat.AddIndex(empty).ok());
  IndexDef bad_col;
  bad_col.table = t;
  bad_col.columns = {99};
  EXPECT_FALSE(cat.AddIndex(bad_col).ok());
  IndexDef bad_table;
  bad_table.table = 42;
  bad_table.columns = {0};
  EXPECT_FALSE(cat.AddIndex(bad_table).ok());
}

TEST(CatalogTest, DropIndex) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 3));
  IndexDef def;
  def.table = t;
  def.columns = {1};
  IndexId id = cat.AddIndex(def).ValueOrDie();
  ASSERT_TRUE(cat.DropIndex(id).ok());
  EXPECT_EQ(cat.index(id), nullptr);
  EXPECT_FALSE(cat.DropIndex(id).ok());  // double drop
  // Can be re-added after drop.
  EXPECT_TRUE(cat.AddIndex(def).ok());
}

TEST(CatalogTest, HypotheticalLifecycle) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 4));
  IndexDef real;
  real.table = t;
  real.columns = {1};
  IndexDef hypo;
  hypo.table = t;
  hypo.columns = {2};
  hypo.hypothetical = true;
  ASSERT_TRUE(cat.AddIndex(real).ok());
  ASSERT_TRUE(cat.AddIndex(hypo).ok());
  EXPECT_EQ(cat.AllIndexes(true).size(), 2u);
  EXPECT_EQ(cat.AllIndexes(false).size(), 1u);
  cat.DropAllHypothetical();
  EXPECT_EQ(cat.AllIndexes(true).size(), 1u);
}

TEST(CatalogTest, TableIndexesFiltersByTable) {
  Catalog cat;
  TableId t1 = cat.AddTable(SimpleTable("a", 3));
  TableId t2 = cat.AddTable(SimpleTable("b", 3));
  IndexDef d1;
  d1.table = t1;
  d1.columns = {1};
  IndexDef d2;
  d2.table = t2;
  d2.columns = {1};
  ASSERT_TRUE(cat.AddIndex(d1).ok());
  ASSERT_TRUE(cat.AddIndex(d2).ok());
  EXPECT_EQ(cat.TableIndexes(t1).size(), 1u);
  EXPECT_EQ(cat.TableIndexes(t2).size(), 1u);
}

TEST(CatalogTest, FindIndexMatchesExactColumns) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 4));
  IndexDef def;
  def.table = t;
  def.columns = {1, 2};
  ASSERT_TRUE(cat.AddIndex(def).ok());
  EXPECT_NE(cat.FindIndex(t, {1, 2}), nullptr);
  EXPECT_EQ(cat.FindIndex(t, {2, 1}), nullptr);
  EXPECT_EQ(cat.FindIndex(t, {1}), nullptr);
}

TEST(CatalogTest, SizesScaleWithRowsAndWidth) {
  Catalog cat;
  TableDef small = SimpleTable("small", 3);
  small.stats.row_count = 100;
  TableDef big = SimpleTable("big", 3);
  big.stats.row_count = 10000;
  TableId s = cat.AddTable(small);
  TableId b = cat.AddTable(big);
  EXPECT_GT(cat.TableSizeBytes(b), cat.TableSizeBytes(s));

  IndexDef narrow;
  narrow.table = b;
  narrow.columns = {1};
  IndexDef wide;
  wide.table = b;
  wide.columns = {1, 2};
  EXPECT_GT(cat.IndexSizeBytes(wide), cat.IndexSizeBytes(narrow));
  (void)s;
}

TEST(CatalogTest, TotalIndexBytesExcludesHypothetical) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 4));
  IndexDef real;
  real.table = t;
  real.columns = {1};
  IndexDef hypo;
  hypo.table = t;
  hypo.columns = {2};
  hypo.hypothetical = true;
  ASSERT_TRUE(cat.AddIndex(real).ok());
  ASSERT_TRUE(cat.AddIndex(hypo).ok());
  const double total = cat.TotalIndexBytes();
  EXPECT_GT(total, 0);
  EXPECT_DOUBLE_EQ(total, cat.IndexSizeBytes(real));
}

TEST(CatalogTest, DescribeIndexUsesNames) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("users", 3));
  IndexDef def;
  def.table = t;
  def.columns = {1, 2};
  EXPECT_EQ(cat.DescribeIndex(def), "users(c1, c2)");
}

TEST(CatalogTest, CopyIsDeep) {
  Catalog cat;
  TableId t = cat.AddTable(SimpleTable("t", 3));
  IndexDef def;
  def.table = t;
  def.columns = {1};
  ASSERT_TRUE(cat.AddIndex(def).ok());
  Catalog copy = cat;
  IndexDef extra;
  extra.table = t;
  extra.columns = {2};
  ASSERT_TRUE(copy.AddIndex(extra).ok());
  EXPECT_EQ(cat.AllIndexes().size(), 1u);
  EXPECT_EQ(copy.AllIndexes().size(), 2u);
}

// ---------- Statistics -------------------------------------------------------

TEST(StatsTest, FromSampleBasics) {
  std::vector<int64_t> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i % 100);
  ColumnStats stats = ColumnStats::FromSample(sample);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 99);
  EXPECT_EQ(stats.ndv, 100u);
  EXPECT_FALSE(stats.histogram.empty());
  EXPECT_EQ(stats.histogram.back(), stats.max);
}

TEST(StatsTest, EmptySample) {
  ColumnStats stats = ColumnStats::FromSample({});
  EXPECT_EQ(stats.ndv, 1u);
  EXPECT_TRUE(stats.histogram.empty());
}

TEST(StatsTest, EqSelectivityUniform) {
  std::vector<int64_t> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i % 10);
  ColumnStats stats = ColumnStats::FromSample(sample);
  EXPECT_NEAR(stats.EqSelectivity(5), 0.1, 1e-9);
  EXPECT_EQ(stats.EqSelectivity(999), 0.0);  // out of range
}

TEST(StatsTest, RangeSelectivityFullAndEmpty) {
  std::vector<int64_t> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i);
  ColumnStats stats = ColumnStats::FromSample(sample);
  EXPECT_NEAR(stats.RangeSelectivity(0, 999), 1.0, 0.05);
  EXPECT_EQ(stats.RangeSelectivity(5000, 9000), 0.0);
  EXPECT_EQ(stats.RangeSelectivity(10, 5), 0.0);  // inverted range
}

TEST(StatsTest, RangeSelectivityHalf) {
  std::vector<int64_t> sample;
  for (int i = 0; i < 10000; ++i) sample.push_back(i);
  ColumnStats stats = ColumnStats::FromSample(sample);
  EXPECT_NEAR(stats.RangeSelectivity(0, 4999), 0.5, 0.06);
}

TEST(StatsTest, HistogramCapturesSkew) {
  // 90% of mass at value 0, the rest spread over [1, 1000].
  std::vector<int64_t> sample;
  for (int i = 0; i < 9000; ++i) sample.push_back(0);
  for (int i = 0; i < 1000; ++i) sample.push_back(1 + (i % 1000));
  ColumnStats stats = ColumnStats::FromSample(sample);
  const double head = stats.RangeSelectivity(0, 0);
  const double tail = stats.RangeSelectivity(500, 1000);
  EXPECT_GT(head, 0.5);
  EXPECT_LT(tail, 0.2);
}

TEST(StatsTest, NullFractionDiscountsSelectivity) {
  ColumnStats stats;
  stats.ndv = 10;
  stats.null_fraction = 0.5;
  EXPECT_NEAR(stats.DefaultEqSelectivity(), 0.05, 1e-9);
}

TEST(StatsTest, ConstantColumn) {
  std::vector<int64_t> sample(100, 7);
  ColumnStats stats = ColumnStats::FromSample(sample);
  EXPECT_EQ(stats.ndv, 1u);
  EXPECT_NEAR(stats.RangeSelectivity(7, 7), 1.0, 1e-6);
  EXPECT_EQ(stats.RangeSelectivity(8, 9), 0.0);
}

}  // namespace
}  // namespace aim::catalog
