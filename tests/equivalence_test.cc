// Differential-equivalence harness: the template every parallel change
// must extend.
//
// The parallel engine's contract is that thread count and memoization are
// pure optimizations — at 1, 2, or 8 threads, cache on or off, the
// advisor must produce *bit-identical* decisions (selections, rejections,
// plan costs, per-query validation evidence). These tests stringify
// everything observable about a run — doubles in hexfloat, so "close"
// never passes for "identical" — and diff the strings. A future change
// that parallelizes a new stage should add its observable output to the
// signature functions here and get the same 1-vs-2-vs-8 coverage for
// free.
//
// Run with `ctest -L equivalence` (and under TSan: AIM_SANITIZE=thread).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/aim.h"
#include "core/continuous.h"
#include "core/sharding.h"
#include "obs/trace.h"
#include "optimizer/what_if_cache.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;

// ---------------------------------------------------------------------------
// Shared fixtures

/// Mixed workload: repeated SELECTs (dedup + cache exercise), a range
/// query, and a DML barrier for the validation replay.
workload::Workload EquivalenceWorkload() {
  workload::Workload w;
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 5.0).ok());
  EXPECT_TRUE(
      w.Add("UPDATE users SET score = 1 WHERE org_id = 3", 4.0).ok());
  return w;
}

/// Schema-identical shards with different row contents (different seeds).
std::vector<storage::Database> MakeShards(int n, uint64_t rows = 1200) {
  std::vector<storage::Database> dbs;
  dbs.reserve(n);
  for (int i = 0; i < n; ++i) {
    dbs.push_back(MakeUsersDb(rows, /*seed=*/100 + i));
  }
  return dbs;
}

void AppendIndexDef(std::ostringstream* out, const catalog::IndexDef& def) {
  *out << "t" << def.table;
  for (catalog::ColumnId col : def.columns) *out << "," << col;
}

/// Everything decision-relevant about one AIM report. `include_counts`
/// folds in optimizer-call and cache counters — comparable only between
/// runs with the same cache setting (memoization changes how often the
/// optimizer runs, never what it decides).
std::string AimSignature(const core::AimReport& report,
                         bool include_counts = true) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const core::CandidateIndex& c : report.recommended) {
    out << "idx ";
    AppendIndexDef(&out, c.def);
    out << " benefit=" << c.benefit << " maint=" << c.maintenance
        << " size=" << c.size_bytes << "\n";
  }
  for (const core::QueryValidation& v : report.validation.per_query) {
    out << "q" << v.fingerprint << " before=" << v.cpu_before
        << " after=" << v.cpu_after << " imp=" << v.improved
        << " reg=" << v.regressed << "\n";
  }
  out << "validation exec=" << report.validation.executed
      << " failed=" << report.validation.failed
      << " reliable=" << report.validation.replay_reliable << "\n";
  for (const std::string& e : report.explanations) out << e << "\n";
  if (include_counts) {
    out << "what_if_calls=" << report.stats.what_if_calls
        << " cache h=" << report.stats.cache_hits
        << " m=" << report.stats.cache_misses << "\n";
  }
  return out.str();
}

/// Final physical design of one database.
std::string CatalogSignature(const storage::Database& db) {
  std::ostringstream out;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, true)) {
    out << "final ";
    AppendIndexDef(&out, *idx);
    out << "\n";
  }
  return out.str();
}

/// Everything observable about one sharded run: the AIM report, every
/// per-shard validation record, the shard-level rejections, and every
/// shard's final catalog.
std::string ShardedSignature(const core::ShardedReport& report,
                             const std::vector<storage::Database>& dbs,
                             bool include_counts = true) {
  std::ostringstream out;
  out << std::hexfloat;
  out << AimSignature(report.aim, include_counts);
  for (const core::ShardValidation& sv : report.validations) {
    out << "shard " << sv.shard << " err=" << sv.error.ok()
        << " exec=" << sv.result.executed
        << " failed=" << sv.result.failed
        << " noreg=" << sv.result.no_regressions << "\n";
    for (const core::QueryValidation& v : sv.result.per_query) {
      out << "  q" << v.fingerprint << " before=" << v.cpu_before
          << " after=" << v.cpu_after << "\n";
    }
  }
  for (const core::CandidateIndex& c : report.rejected_by_shards) {
    out << "rejected ";
    AppendIndexDef(&out, c.def);
    out << "\n";
  }
  out << "lost=" << report.shards_lost << " degraded=" << report.degraded
      << "\n";
  for (size_t i = 0; i < dbs.size(); ++i) {
    out << "shard" << i << ":\n" << CatalogSignature(dbs[i]);
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Single-database pipeline

std::string RunAim(const storage::Database& base,
                   const workload::Workload& w, int threads,
                   size_t cache_entries,
                   executor::EngineKind replay_engine =
                       executor::EngineKind::kBatch) {
  storage::Database db = base;
  core::AimOptions options;
  options.num_threads = threads;
  options.what_if_cache_entries = cache_entries;
  options.validation.replay_engine = replay_engine;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  return AimSignature(r.ValueOrDie()) + CatalogSignature(db);
}

TEST(EquivalenceTest, AimPipelineBitIdenticalAcrossThreads) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();
  for (size_t cache : {size_t{4096}, size_t{0}}) {
    const std::string serial = RunAim(base, w, 1, cache);
    ASSERT_NE(serial.find("idx "), std::string::npos)
        << "equivalence run recommended nothing:\n" << serial;
    EXPECT_EQ(serial, RunAim(base, w, 2, cache)) << "cache=" << cache;
    EXPECT_EQ(serial, RunAim(base, w, 8, cache)) << "cache=" << cache;
  }
}

// The replay-engine knob is a third equivalence dimension next to thread
// count and cache size: the vectorized batch executor and the row
// interpreter must drive the validation replay to bit-identical
// evidence. Deeper row-vs-batch coverage lives in `ctest -L batch`.
TEST(EquivalenceTest, AimPipelineBitIdenticalAcrossReplayEngines) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();
  for (size_t cache : {size_t{4096}, size_t{0}}) {
    const std::string row = RunAim(base, w, 1, cache,
                                   executor::EngineKind::kRowAtATime);
    ASSERT_NE(row.find("idx "), std::string::npos)
        << "equivalence run recommended nothing:\n" << row;
    for (int threads : {1, 2, 8}) {
      EXPECT_EQ(row, RunAim(base, w, threads, cache,
                            executor::EngineKind::kBatch))
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(EquivalenceTest, AimCacheChangesCallCountsNotDecisions) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto decisions = [&](int threads, size_t cache_entries) {
    storage::Database db = base;
    core::AimOptions options;
    options.num_threads = threads;
    options.what_if_cache_entries = cache_entries;
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    Result<core::AimReport> r = aim.RunOnce(w, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return std::string();
    return AimSignature(r.ValueOrDie(), /*include_counts=*/false) +
           CatalogSignature(db);
  };

  const std::string cached = decisions(1, 4096);
  EXPECT_EQ(cached, decisions(1, 0));
  EXPECT_EQ(cached, decisions(8, 4096));
  EXPECT_EQ(cached, decisions(8, 0));
}

// The exploration gate and ordered deployment are a fourth equivalence
// dimension: with a bandit admission pass and a per-step deployment
// schedule in the loop, decisions (admissions, deferrals, arm state,
// modeled schedule) must still be bit-identical at 1/2/8 threads with
// the what-if cache on or off. Deeper lifecycle coverage lives in
// `ctest -L exploration`.
TEST(EquivalenceTest, ExplorationAndOrderedDeployBitIdentical) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto run = [&](int threads, size_t cache_entries) {
    storage::Database db = base;
    core::ExplorationOptions gate_options;
    gate_options.enabled = true;
    core::ExplorationGate gate(gate_options);
    core::AimOptions options;
    options.num_threads = threads;
    options.what_if_cache_entries = cache_entries;
    options.exploration_gate = &gate;
    options.deployment.ordered = true;
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    Result<core::AimReport> r = aim.RunOnce(w, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return std::string();
    const core::AimReport& report = r.ValueOrDie();
    std::ostringstream out;
    out << std::hexfloat;
    out << AimSignature(report, /*include_counts=*/false);
    const core::ExplorationSummary& e = report.exploration;
    out << "gate admit=" << e.admitted << " defer=" << e.deferred
        << " regret=" << e.projected_regret_seconds << "\n";
    for (const core::ArmView& a : gate.arms()) {
      out << "arm " << a.key << " pulls=" << a.pulls
          << " n=" << a.measured_count
          << " sum=" << a.measured_total_seconds << "\n";
    }
    const core::DeploymentReport& d = report.deployment;
    out << "deploy installed=" << d.installed
        << " total=" << d.total_benefit_seconds
        << " t50=" << d.modeled_time_to_half_benefit_seconds
        << " makespan=" << d.modeled_makespan_seconds << "\n";
    for (const core::DeploymentStepResult& s : d.steps) {
      out << "step ";
      AppendIndexDef(&out, s.def);
      out << " slot=" << s.slot << " start=" << s.modeled_start_seconds
          << " finish=" << s.modeled_finish_seconds
          << " cum=" << s.cumulative_benefit_seconds
          << " ok=" << s.installed << "\n";
    }
    return out.str() + CatalogSignature(db);
  };

  for (size_t cache : {size_t{4096}, size_t{0}}) {
    const std::string serial = run(1, cache);
    ASSERT_NE(serial.find("idx "), std::string::npos)
        << "exploration equivalence run recommended nothing:\n" << serial;
    ASSERT_NE(serial.find("step "), std::string::npos)
        << "ordered deployment produced no steps:\n" << serial;
    EXPECT_EQ(serial, run(2, cache)) << "cache=" << cache;
    EXPECT_EQ(serial, run(8, cache)) << "cache=" << cache;
  }
}

// ---------------------------------------------------------------------------
// Sharded pipeline

std::string RunSharded(int threads, size_t cache_entries,
                       const workload::Workload& w, int shard_count = 4) {
  std::vector<storage::Database> dbs = MakeShards(shard_count);
  core::ShardedOptions options;
  options.comprehensive_validation = true;
  options.aim.num_threads = threads;
  options.aim.what_if_cache_entries = cache_entries;
  core::ShardedIndexManager manager(options);
  std::vector<core::Shard> shards;
  for (storage::Database& db : dbs) {
    shards.push_back(core::Shard{&db, nullptr});
  }
  Result<core::ShardedReport> r =
      manager.RunOnce(w, shards, optimizer::CostModel());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  return ShardedSignature(r.ValueOrDie(), dbs);
}

TEST(EquivalenceTest, ShardedRunOnceBitIdenticalAcrossThreads) {
  FaultRegistry::Instance().DisarmAll();
  const workload::Workload w = EquivalenceWorkload();
  for (size_t cache : {size_t{4096}, size_t{0}}) {
    const std::string serial = RunSharded(1, cache, w);
    ASSERT_NE(serial.find("shard "), std::string::npos);
    EXPECT_EQ(serial, RunSharded(2, cache, w)) << "cache=" << cache;
    EXPECT_EQ(serial, RunSharded(8, cache, w)) << "cache=" << cache;
  }
}

TEST(EquivalenceTest, ShardedRejectionsIdenticalAcrossThreads) {
  FaultRegistry::Instance().DisarmAll();
  // A workload whose only candidate never survives validation on any
  // shard exercises the rejected_by_shards path deterministically: the
  // validation budget rejection must be the same at any thread count.
  workload::Workload w = EquivalenceWorkload();

  auto rejected = [&](int threads) {
    std::vector<storage::Database> dbs = MakeShards(3);
    core::ShardedOptions options;
    options.comprehensive_validation = true;
    options.aim.num_threads = threads;
    core::ShardedIndexManager manager(options);
    std::vector<core::Shard> shards;
    for (storage::Database& db : dbs) {
      shards.push_back(core::Shard{&db, nullptr});
    }
    Result<core::ShardedReport> r =
        manager.RunOnce(w, shards, optimizer::CostModel());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::ostringstream out;
    if (r.ok()) {
      for (const core::CandidateIndex& c :
           r.ValueOrDie().rejected_by_shards) {
        AppendIndexDef(&out, c.def);
        out << ";";
      }
    }
    return out.str();
  };

  const std::string serial = rejected(1);
  EXPECT_EQ(serial, rejected(2));
  EXPECT_EQ(serial, rejected(8));
}

// ---------------------------------------------------------------------------
// Continuous tuner: cache carry is a pure optimization too

TEST(EquivalenceTest, TunerCacheCarryDoesNotChangeDecisions) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto run_intervals = [&](bool carry, int threads) {
    storage::Database db = base;
    core::ContinuousTunerOptions options;
    options.carry_what_if_cache = carry;
    options.aim.num_threads = threads;
    core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    std::ostringstream out;
    out << std::hexfloat;
    for (int tick = 0; tick < 3; ++tick) {
      Result<core::IntervalReport> r = tuner.Tick(w, nullptr);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) continue;
      const core::IntervalReport& report = r.ValueOrDie();
      EXPECT_FALSE(report.degraded);
      out << "tick" << tick << " dropped=" << report.dropped.size()
          << " shrunk=" << report.shrunk.size() << "\n";
      out << AimSignature(report.aim, /*include_counts=*/false);
    }
    out << CatalogSignature(db);
    return out.str();
  };

  const std::string cold = run_intervals(false, 1);
  EXPECT_EQ(cold, run_intervals(true, 1));
  EXPECT_EQ(cold, run_intervals(true, 8));
}

// ---------------------------------------------------------------------------
// Tracing is observation only

/// The obs layer's core contract: spans and counters never change a
/// decision. The same runs with a recording tracer installed and without
/// one must produce byte-identical signatures — including the optimizer
/// call and cache counters, which a sloppy instrumentation layer (e.g.
/// one that plans a statement to fingerprint it) would perturb first.
TEST(EquivalenceTest, TracingOnOffBitIdentical) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  const std::string off_aim = RunAim(base, w, 2, 4096);
  const std::string off_sharded = RunSharded(2, 4096, w, 3);

  // Virtual clock: even the tracer's own timestamps are deterministic, so
  // a flaky wall clock can never mask a decision difference.
  obs::Tracer tracer(obs::Tracer::Clock::kVirtual);
  obs::Tracer::Install(&tracer);
  const std::string on_aim = RunAim(base, w, 2, 4096);
  const std::string on_sharded = RunSharded(2, 4096, w, 3);
  obs::Tracer::Install(nullptr);

  EXPECT_EQ(off_aim, on_aim);
  EXPECT_EQ(off_sharded, on_sharded);
  // And the recording side actually recorded, and cleanly.
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.CheckBalanced().ok())
      << tracer.CheckBalanced().ToString();
}

}  // namespace
}  // namespace aim
