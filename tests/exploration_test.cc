// Safe-online-exploration suite (ctest -L exploration): the bandit gate,
// the quarantine lifecycle, and ordered deployment, pinned the way every
// decision path in this repo is pinned — deterministic, seeded, and
// bit-identical across thread counts.
//
//   (a) 200+ seeded drift-chaos schedules (workload mix shifts mid-run,
//       schema evolution by repopulation or a new column) assert the
//       tuner NEVER applies a quarantined index, quarantine entries
//       invalidate exactly when the schema/stats fingerprint drifts, and
//       whole-schedule transcripts are bit-identical at 1/2/8 threads.
//   (b) A differential deployment-order test: every order the scheduler
//       could emit converges to the identical final configuration and
//       row fingerprints, while the chosen order's modeled
//       cumulative-benefit curve dominates every other permutation.
//   (c) Unit pins for the regret budget, the offense/quarantine state
//       machine, gate persistence, and per-step rollback under fault
//       injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/continuous.h"
#include "core/deployment_plan.h"
#include "core/exploration.h"
#include "executor/executor.h"
#include "sql/normalizer.h"
#include "storage/index_transaction.h"
#include "tests/test_util.h"
#include "workload/monitor.h"

namespace aim::core {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustParse;
using aim::testing::RowFingerprints;

// ---------------------------------------------------------------------------
// Fixtures

/// Four selective SELECTs over distinct columns: enough distinct
/// candidates for quarantine, ordering, and budget scenarios.
workload::Workload ExplorationWorkload() {
  workload::Workload w;
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE score = 250", 8.0).ok());
  return w;
}

/// Feeds one interval of fabricated execution statistics: every query
/// clears the selection and detector thresholds (8 executions, low ddr),
/// and fingerprints in `spiked` run `spike_factor` times hotter — the
/// regression signal.
void FeedInterval(workload::WorkloadMonitor* monitor,
                  const workload::Workload& w,
                  const std::set<uint64_t>& spiked = {},
                  double spike_factor = 10.0) {
  monitor->Reset();
  for (const workload::Query& q : w.queries) {
    const uint64_t fp = sql::NormalizedFingerprint(q.stmt);
    executor::ExecutionMetrics m;
    m.rows_examined = 400;
    m.rows_sent = 4;
    m.cpu_seconds = spiked.count(fp) ? 0.5 * spike_factor : 0.5;
    for (int i = 0; i < 8; ++i) {
      monitor->RecordKeyed(fp, sql::NormalizedSql(q.stmt), m);
    }
  }
}

void AppendDef(std::ostringstream* out, const catalog::IndexDef& def) {
  *out << "t" << def.table;
  for (catalog::ColumnId c : def.columns) *out << "," << c;
}

/// Deterministic transcript of the gate: arms, quarantine, fingerprint.
std::string GateSignature(const ExplorationGate& gate) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "gate fp=" << gate.fingerprint()
      << " scale=" << gate.reward_scale() << "\n";
  for (const ArmView& a : gate.arms()) {
    out << "arm " << a.key << " pulls=" << a.pulls
        << " n=" << a.measured_count << " sum=" << a.measured_total_seconds
        << "\n";
  }
  for (const QuarantineView& q : gate.quarantine()) {
    out << "quar " << q.key << " off=" << q.offenses
        << " q=" << q.quarantined << " fp=" << q.fingerprint << "\n";
  }
  return out.str();
}

/// Everything decision-relevant one interval produced: the applied set,
/// exploration admission numbers, rollbacks/quarantines, and the modeled
/// deployment schedule (wall-clock fields excluded on purpose).
std::string TickSignature(const IntervalReport& report) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "tick degraded=" << report.degraded
      << " released=" << report.quarantine_released << "\n";
  for (const CandidateIndex& c : report.aim.recommended) {
    out << "applied ";
    AppendDef(&out, c.def);
    out << " b=" << c.benefit << " m=" << c.maintenance << "\n";
  }
  for (const catalog::IndexDef& def : report.rolled_back) {
    out << "rolled_back ";
    AppendDef(&out, def);
    out << "\n";
  }
  for (uint64_t key : report.quarantined_now) out << "quar_now " << key
                                                  << "\n";
  const ExplorationSummary& e = report.aim.exploration;
  out << "gatefilter=" << e.candidates_quarantined << " gated=" << e.gated
      << " admit=" << e.admitted << " defer=" << e.deferred
      << " regret=" << e.projected_regret_seconds << "\n";
  const DeploymentReport& d = report.aim.deployment;
  out << "deploy ordered=" << d.ordered << " installed=" << d.installed
      << " failed=" << d.failed_steps << " deferred="
      << d.deferred_for_storage << " total=" << d.total_benefit_seconds
      << " t50=" << d.modeled_time_to_half_benefit_seconds
      << " makespan=" << d.modeled_makespan_seconds << "\n";
  for (const DeploymentStepResult& s : d.steps) {
    out << "step ";
    AppendDef(&out, s.def);
    out << " slot=" << s.slot << " start=" << s.modeled_start_seconds
        << " finish=" << s.modeled_finish_seconds
        << " cum=" << s.cumulative_benefit_seconds
        << " ok=" << s.installed << "\n";
  }
  return out.str();
}

/// Order-insensitive: the *set* of secondary indexes is what converges;
/// creation order (and thus catalog iteration order) legitimately
/// differs across deployment permutations.
std::string FinalCatalogSignature(const storage::Database& db) {
  std::vector<std::string> lines;
  for (const catalog::IndexDef* idx :
       db.catalog().AllIndexes(false, true)) {
    std::ostringstream line;
    AppendDef(&line, *idx);
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const std::string& l : lines) out << "final " << l << "\n";
  return out.str();
}

CandidateIndex MakeCandidate(catalog::TableId table,
                             std::vector<catalog::ColumnId> cols,
                             double benefit, double maintenance,
                             double size_bytes) {
  CandidateIndex c;
  c.def.table = table;
  c.def.columns = std::move(cols);
  c.benefit = benefit;
  c.maintenance = maintenance;
  c.size_bytes = size_bytes;
  return c;
}

// ---------------------------------------------------------------------------
// Arm identity

TEST(IndexArmKeyTest, PureFunctionOfTableAndColumns) {
  catalog::IndexDef a;
  a.table = 2;
  a.columns = {1, 4};
  catalog::IndexDef b = a;
  b.id = 77;
  b.name = "idx_whatever";
  b.hypothetical = true;
  b.created_by_automation = true;
  EXPECT_EQ(IndexArmKey(a), IndexArmKey(b));

  catalog::IndexDef c = a;
  c.columns = {4, 1};  // column order is part of the identity
  EXPECT_NE(IndexArmKey(a), IndexArmKey(c));
  catalog::IndexDef d = a;
  d.table = 3;
  EXPECT_NE(IndexArmKey(a), IndexArmKey(d));
}

// ---------------------------------------------------------------------------
// Regret budget

TEST(ExplorationGateTest, AdmitBoundsPerIntervalRegret) {
  ExplorationOptions options;
  options.enabled = true;
  options.regret_budget_seconds = 0.10;
  options.unproven_risk_fraction = 0.5;
  options.ucb_coefficient = 0.0;  // rank purely by estimate
  ExplorationGate gate(options);

  // Risks: 0.5 * benefit + maintenance = 0.06, 0.055, 0.052 — any two
  // exceed 0.10 with the third, so exactly two are admitted.
  std::vector<CandidateIndex> validated = {
      MakeCandidate(0, {1}, 0.10, 0.010, 1000),
      MakeCandidate(0, {2}, 0.09, 0.010, 1000),
      MakeCandidate(0, {3}, 0.08, 0.012, 1000),
  };
  AdmissionDecision d = gate.Admit(validated);
  ASSERT_EQ(d.admitted.size(), 1u);
  ASSERT_EQ(d.deferred.size(), 2u);
  EXPECT_EQ(d.admitted[0].def.columns, std::vector<catalog::ColumnId>{1});
  EXPECT_LE(d.projected_regret_seconds, options.regret_budget_seconds);

  // Deferral is retry, not rejection: with the first arm installed and
  // out of the pool, the next interval's budget admits the runner-up.
  std::vector<CandidateIndex> next = {validated[1], validated[2]};
  AdmissionDecision d2 = gate.Admit(next);
  EXPECT_EQ(d2.admitted.size(), 1u);
  EXPECT_EQ(d2.admitted[0].def.columns, std::vector<catalog::ColumnId>{2});
}

TEST(ExplorationGateTest, TopArmAlwaysAdmittedUnderTinyBudget) {
  ExplorationOptions options;
  options.enabled = true;
  options.regret_budget_seconds = 1e-9;  // nothing "fits"
  ExplorationGate gate(options);
  AdmissionDecision d =
      gate.Admit({MakeCandidate(0, {1}, 0.5, 0.1, 1000)});
  ASSERT_EQ(d.admitted.size(), 1u);  // soft budget: progress guaranteed
}

TEST(ExplorationGateTest, NonPositiveBudgetIsUnconstrained) {
  ExplorationOptions options;
  options.enabled = true;
  options.regret_budget_seconds = 0.0;
  ExplorationGate gate(options);
  AdmissionDecision d = gate.Admit({
      MakeCandidate(0, {1}, 0.5, 0.1, 1000),
      MakeCandidate(0, {2}, 0.4, 0.1, 1000),
      MakeCandidate(0, {3}, 0.3, 0.1, 1000),
  });
  EXPECT_EQ(d.admitted.size(), 3u);
  EXPECT_TRUE(d.deferred.empty());
}

TEST(ExplorationGateTest, MeasuredArmsShedUnprovenRisk) {
  ExplorationOptions options;
  options.enabled = true;
  options.unproven_risk_fraction = 0.5;
  options.regret_budget_seconds = 0.0;
  ExplorationGate gate(options);
  const CandidateIndex c = MakeCandidate(0, {1}, 0.2, 0.01, 1000);

  AdmissionDecision first = gate.Admit({c});
  const double unproven_risk = first.projected_regret_seconds;
  EXPECT_NEAR(unproven_risk, 0.01 + 0.5 * 0.2, 1e-12);

  // Validated evidence arrives: the arm is measured, risk drops to its
  // maintenance cost alone.
  CloneValidationResult validation;
  CandidateIndex applied = c;
  applied.benefiting_queries = {42};
  QueryValidation qv;
  qv.fingerprint = 42;
  qv.cpu_before = 0.30;
  qv.cpu_after = 0.12;
  validation.per_query = {qv};
  gate.ObserveValidation({applied}, validation);

  AdmissionDecision second = gate.Admit({c});
  EXPECT_NEAR(second.projected_regret_seconds, 0.01, 1e-12);
  ASSERT_EQ(gate.arms().size(), 1u);
  EXPECT_EQ(gate.arms()[0].measured_count, 1u);
  EXPECT_NEAR(gate.arms()[0].measured_total_seconds, 0.18, 1e-12);
}

// ---------------------------------------------------------------------------
// Quarantine lifecycle

TEST(ExplorationGateTest, QuarantineAfterRepeatOffensesAndDriftRelease) {
  ExplorationOptions options;
  options.enabled = true;
  options.quarantine_after_offenses = 2;
  ExplorationGate gate(options);
  gate.SyncFingerprint(111);

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  EXPECT_FALSE(gate.ObserveRegression(def));  // offense 1: rollback only
  EXPECT_FALSE(gate.IsQuarantined(def));
  EXPECT_TRUE(gate.ObserveRegression(def));  // offense 2: quarantined
  EXPECT_TRUE(gate.IsQuarantined(def));
  EXPECT_EQ(gate.quarantined_keys().size(), 1u);

  // Same fingerprint: the quarantine holds.
  EXPECT_EQ(gate.SyncFingerprint(111), 0u);
  EXPECT_TRUE(gate.IsQuarantined(def));

  // Drift: the evidence predates the new schema/stats — released.
  EXPECT_EQ(gate.SyncFingerprint(222), 1u);
  EXPECT_FALSE(gate.IsQuarantined(def));
  EXPECT_TRUE(gate.quarantined_keys().empty());
}

TEST(ExplorationGateTest, PersistenceRoundTripsArmsAndQuarantine) {
  ExplorationOptions options;
  options.enabled = true;
  options.quarantine_after_offenses = 1;
  ExplorationGate gate(options);
  gate.SyncFingerprint(99);
  gate.ObserveFleetBenefit(0.25);
  catalog::IndexDef def;
  def.table = 1;
  def.columns = {2, 3};
  def.name = "ix_users_a";
  EXPECT_TRUE(gate.ObserveRegression(def));
  gate.Admit({MakeCandidate(1, {4}, 0.3, 0.01, 500)});

  std::stringstream buf;
  ASSERT_TRUE(gate.SaveTo(buf).ok());
  ExplorationGate loaded(options);
  ASSERT_TRUE(loaded.LoadFrom(buf).ok());
  EXPECT_EQ(GateSignature(loaded), GateSignature(gate));
  EXPECT_TRUE(loaded.IsQuarantined(def));

  // Snapshot-file round trip (fresh path: TempDir persists across runs).
  ExplorationOptions disk = options;
  disk.state_path = ::testing::TempDir() + "/aim_gate_state_test.bin";
  std::remove(disk.state_path.c_str());
  ExplorationGate writer(disk);
  writer.SyncFingerprint(99);
  EXPECT_TRUE(writer.ObserveRegression(def));
  ASSERT_TRUE(writer.SaveSnapshot().ok());
  ExplorationGate reader(disk);
  ASSERT_TRUE(reader.LoadSnapshot().ok());
  EXPECT_EQ(GateSignature(reader), GateSignature(writer));
  std::remove(disk.state_path.c_str());
}

TEST(ExplorationGateTest, CorruptSnapshotColdStarts) {
  ExplorationOptions options;
  options.state_path = ::testing::TempDir() + "/aim_gate_corrupt_test.bin";
  {
    std::ofstream out(options.state_path, std::ios::binary);
    out << "not a gate state file";
  }
  ExplorationGate gate(options);
  EXPECT_FALSE(gate.LoadSnapshot().ok());  // rejected, state untouched
  EXPECT_TRUE(gate.arms().empty());
  EXPECT_TRUE(gate.quarantine().empty());
  std::remove(options.state_path.c_str());
}

// ---------------------------------------------------------------------------
// Deployment planning

TEST(DeploymentPlannerTest, SmithsRuleOrdersByBenefitRate) {
  DeploymentOptions options;
  options.ordered = true;
  options.build_bytes_per_second = 1000.0;
  DeploymentPlanner planner(options);
  // Rates (benefit per modeled build second): a=0.5, b=2.0, c=1.0.
  const std::vector<CandidateIndex> approved = {
      MakeCandidate(0, {1}, 1.0, 0, 2000),  // a: 2s build
      MakeCandidate(0, {2}, 2.0, 0, 1000),  // b: 1s build
      MakeCandidate(0, {3}, 1.0, 0, 1000),  // c: 1s build
  };
  DeploymentPlan plan = planner.Plan(approved);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].index.def.columns,
            std::vector<catalog::ColumnId>{2});
  EXPECT_EQ(plan.steps[1].index.def.columns,
            std::vector<catalog::ColumnId>{3});
  EXPECT_EQ(plan.steps[2].index.def.columns,
            std::vector<catalog::ColumnId>{1});
  EXPECT_DOUBLE_EQ(plan.total_benefit_seconds, 4.0);
  EXPECT_DOUBLE_EQ(plan.makespan_seconds, 4.0);
  // 50% of 4.0 = 2.0 benefit, reached the moment b finishes at t=1 —
  // versus t=3 under the naive (a, b, c) order.
  EXPECT_DOUBLE_EQ(plan.TimeToBenefitFraction(0.5), 1.0);
}

TEST(DeploymentPlannerTest, StorageHeadroomDefersNotFails) {
  DeploymentOptions options;
  options.ordered = true;
  options.storage_headroom_bytes = 2500;
  options.build_bytes_per_second = 1000.0;
  DeploymentPlanner planner(options);
  DeploymentPlan plan = planner.Plan({
      MakeCandidate(0, {1}, 3.0, 0, 2000),  // fits (priority 1)
      MakeCandidate(0, {2}, 1.0, 0, 1000),  // over headroom: deferred
      MakeCandidate(0, {3}, 0.4, 0, 400),   // still fits
  });
  ASSERT_EQ(plan.steps.size(), 2u);
  ASSERT_EQ(plan.deferred_for_storage.size(), 1u);
  EXPECT_EQ(plan.deferred_for_storage[0].def.columns,
            std::vector<catalog::ColumnId>{2});
}

TEST(DeploymentPlannerTest, SlotsOverlapModeledBuilds) {
  DeploymentOptions options;
  options.ordered = true;
  options.max_concurrent_builds = 2;
  options.build_bytes_per_second = 1000.0;
  DeploymentPlanner planner(options);
  DeploymentPlan plan = planner.Plan({
      MakeCandidate(0, {1}, 4.0, 0, 2000),
      MakeCandidate(0, {2}, 1.0, 0, 1000),
      MakeCandidate(0, {3}, 0.5, 0, 1000),
  });
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].slot, 0);
  EXPECT_EQ(plan.steps[1].slot, 1);
  // Third build starts when the 1s slot frees, not after the 2s one.
  EXPECT_DOUBLE_EQ(plan.steps[2].start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(plan.makespan_seconds, 2.0);
}

// The optimality pin behind the differential test: Smith's rule minimizes
// Σ bᵢ·Cᵢ over ALL permutations, i.e. its cumulative-benefit curve
// dominates every order the scheduler could have emitted in aggregate.
TEST(DeploymentPlannerTest, ChosenOrderDominatesEveryPermutation) {
  DeploymentOptions options;
  options.ordered = true;
  options.build_bytes_per_second = 1000.0;
  DeploymentPlanner planner(options);
  Rng rng(7);
  std::vector<CandidateIndex> approved;
  for (catalog::ColumnId c = 1; c <= 4; ++c) {
    approved.push_back(MakeCandidate(0, {c},
                                     0.1 + 0.13 * rng.NextDouble(),
                                     0.0,
                                     500 + 400.0 * rng.NextDouble()));
  }
  DeploymentPlan plan = planner.Plan(approved);
  const auto weighted_completion = [&](const std::vector<size_t>& order) {
    double t = 0.0, sum = 0.0;
    for (size_t i : order) {
      t += planner.ModeledBuildSeconds(approved[i]);
      sum += approved[i].benefit * t;
    }
    return sum;
  };
  double chosen = 0.0;
  for (const DeploymentStep& s : plan.steps) {
    chosen += s.index.benefit * s.finish_seconds;
  }
  std::vector<size_t> perm = {0, 1, 2, 3};
  do {
    EXPECT_LE(chosen, weighted_completion(perm) + 1e-9);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

// ---------------------------------------------------------------------------
// Differential deployment order: any order converges, physically

class DeploymentOrderDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeploymentOrderDifferentialTest, AllPermutationsConverge) {
  FaultRegistry::Instance().DisarmAll();
  const uint64_t seed = GetParam();
  const storage::Database base = MakeUsersDb(600, /*seed=*/300 + seed);
  const workload::Workload w = ExplorationWorkload();

  // Learn the approved set on a scratch copy (ordered deployment on, so
  // the applied set is exactly what the scheduler would install).
  std::vector<catalog::IndexDef> approved;
  std::string chosen_catalog;
  {
    storage::Database db = base;
    AimOptions options;
    options.deployment.ordered = true;
    AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    Result<AimReport> r = aim.RunOnce(w, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const CandidateIndex& c : r.ValueOrDie().recommended) {
      catalog::IndexDef def = c.def;
      def.hypothetical = false;
      def.id = catalog::kInvalidIndex;
      def.created_by_automation = true;
      approved.push_back(def);
    }
    chosen_catalog = FinalCatalogSignature(db);
  }
  ASSERT_GE(approved.size(), 2u) << "fixture produced too few indexes";
  ASSERT_LE(approved.size(), 5u) << "permutation space too large";

  // Probe queries whose results pin physical correctness. (Statement is
  // move-only: build the vector with push_back.)
  std::vector<sql::Statement> probes;
  probes.push_back(
      MustParse("SELECT id, org_id FROM users WHERE org_id = 3"));
  probes.push_back(MustParse("SELECT id FROM users WHERE score = 250"));
  probes.push_back(
      MustParse("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40"));
  const auto probe_fingerprints = [&](storage::Database* db) {
    std::vector<std::multiset<std::string>> out;
    executor::Executor exec(db, optimizer::CostModel());
    for (const sql::Statement& stmt : probes) {
      Result<executor::ExecuteResult> r = exec.Execute(stmt);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(r.ok() ? RowFingerprints(r.ValueOrDie())
                           : std::multiset<std::string>{});
    }
    return out;
  };

  // Baseline truth: the unindexed heap.
  storage::Database heap = base;
  const auto truth = probe_fingerprints(&heap);

  std::vector<size_t> perm(approved.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::string first_catalog;
  do {
    storage::Database db = base;
    // Per-step transactions, exactly like the ordered apply path.
    for (size_t i : perm) {
      storage::IndexSetTransaction txn(&db);
      Result<catalog::IndexId> id = txn.CreateIndex(approved[i]);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      txn.Commit();
    }
    const std::string catalog_sig = FinalCatalogSignature(db);
    if (first_catalog.empty()) {
      first_catalog = catalog_sig;
      EXPECT_EQ(catalog_sig, chosen_catalog)
          << "permutation catalog differs from the scheduler's";
    } else {
      EXPECT_EQ(catalog_sig, first_catalog);
    }
    EXPECT_EQ(probe_fingerprints(&db), truth)
        << "an install order changed query results";
  } while (std::next_permutation(perm.begin(), perm.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeploymentOrderDifferentialTest,
                         ::testing::Values(0u, 1u, 2u));

// ---------------------------------------------------------------------------
// Per-step rollback under fault injection

TEST(OrderedDeploymentTest, FailedStepRollsBackAloneEarlierInstallsStay) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = ExplorationWorkload();

  // Fail exactly the second deployment step, hard (non-retriable).
  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  spec.skip = 1;
  spec.fail_times = 1;
  ScopedFault fault("deploy.step", spec);

  AimOptions options;
  options.deployment.ordered = true;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AimReport& report = r.ValueOrDie();
  ASSERT_GE(report.deployment.steps.size(), 3u);
  EXPECT_EQ(report.deployment.failed_steps, 1u);
  EXPECT_TRUE(report.deployment.steps[0].installed);
  EXPECT_FALSE(report.deployment.steps[1].installed);
  EXPECT_TRUE(report.deployment.steps[2].installed);
  EXPECT_EQ(report.recommended.size(), report.deployment.installed);

  // The failed step's index is absent; the others are materialized.
  for (size_t i = 0; i < report.deployment.steps.size(); ++i) {
    const DeploymentStepResult& s = report.deployment.steps[i];
    const catalog::IndexDef* found =
        db.catalog().FindIndex(s.def.table, s.def.columns);
    if (s.installed) {
      ASSERT_NE(found, nullptr);
      EXPECT_NE(db.btree(found->id), nullptr) << "half-built index";
    } else {
      EXPECT_EQ(found, nullptr) << "failed step leaked its index";
    }
  }
}

// ---------------------------------------------------------------------------
// Drift-chaos schedules: quarantine + bit-identity across threads

struct ScheduleResult {
  std::string signature;
  bool quarantine_triggered = false;
};

enum class DriftKind { kMixShift = 0, kRepopulate = 1, kAddColumn = 2 };

/// One seeded drift-chaos schedule: 6 monitor-driven ticks with a forced
/// regression storm at ticks 2–3 (offense → rollback, repeat offense →
/// quarantine) and a seeded drift event before tick 4. Asserts the tuner
/// never applies (or leaves standing) a quarantined index, and that
/// quarantine survives exactly the fingerprint-preserving drifts.
ScheduleResult RunDriftSchedule(uint64_t seed, int threads) {
  ScheduleResult result;
  storage::Database db = MakeUsersDb(400, /*seed=*/1000 + seed);
  workload::Workload w = ExplorationWorkload();
  workload::WorkloadMonitor monitor;
  Rng rng(seed);

  ContinuousTunerOptions options;
  options.exploration.enabled = true;
  options.exploration.quarantine_after_offenses = 2;
  options.exploration.regret_budget_seconds = 0.0;  // budget pinned in
                                                    // unit tests
  options.aim.deployment.ordered = true;
  options.aim.num_threads = threads;
  options.drop_after_idle_intervals = 100;  // GC out of the picture
  options.shrink_after_idle_intervals = 100;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  // Seeded schedule decisions (identical across thread counts).
  const DriftKind drift = static_cast<DriftKind>(rng.Uniform(3));
  std::set<uint64_t> spiked;
  spiked.insert(sql::NormalizedFingerprint(
      w.queries[rng.Uniform(w.queries.size())].stmt));

  std::ostringstream transcript;
  for (int tick = 0; tick < 6; ++tick) {
    if (tick == 4) {
      // The drift event, between intervals.
      switch (drift) {
        case DriftKind::kMixShift: {
          // Workload mix shifts: weights rotate, one query disappears.
          for (workload::Query& q : w.queries) {
            q.weight = 1.0 + (q.weight * 3.0) / 50.0;
          }
          w.queries.pop_back();
          break;
        }
        case DriftKind::kRepopulate: {
          executor::Executor exec(&db, optimizer::CostModel());
          for (int i = 0; i < 20; ++i) {
            const uint64_t id = 1000000 + seed * 100 + i;
            Result<executor::ExecuteResult> r = exec.Execute(MustParse(
                "INSERT INTO users (id, org_id, status, score, "
                "created_at, email, payload) VALUES (" +
                std::to_string(id) + ", 1, 2, 3, 4, 'x', 'y')"));
            EXPECT_TRUE(r.ok()) << r.status().ToString();
          }
          db.AnalyzeAll();
          break;
        }
        case DriftKind::kAddColumn: {
          catalog::ColumnDef col;
          col.name = "drift_col";
          col.type = catalog::ColumnType::kInt64;
          db.catalog().mutable_table(0)->columns.push_back(col);
          break;
        }
      }
    }
    const bool spike = tick == 2 || tick == 3;
    FeedInterval(&monitor, w, spike ? spiked : std::set<uint64_t>{});

    std::set<uint64_t> quarantined_before;
    if (const ExplorationGate* gate = tuner.exploration_gate()) {
      quarantined_before = gate->quarantined_keys();
    }
    Result<IntervalReport> r = tuner.Tick(w, &monitor);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return result;
    const IntervalReport& report = r.ValueOrDie();
    EXPECT_FALSE(report.degraded) << report.error.ToString();

    // THE invariant: nothing quarantined at tick entry is ever applied —
    // unless the fingerprint drifted this tick and released it first,
    // in which case re-application is legitimate (the evidence expired).
    if (report.quarantine_released == 0) {
      for (const CandidateIndex& c : report.aim.recommended) {
        EXPECT_EQ(quarantined_before.count(IndexArmKey(c.def)), 0u)
            << "tuner applied a quarantined index, seed=" << seed
            << " tick=" << tick;
      }
    }
    // Stronger form: no quarantined index is standing after the tick.
    const ExplorationGate* gate = tuner.exploration_gate();
    const std::set<uint64_t> quarantined_now =
        gate != nullptr ? gate->quarantined_keys() : std::set<uint64_t>{};
    for (const catalog::IndexDef* idx :
         db.catalog().AllIndexes(false, false)) {
      if (!idx->created_by_automation) continue;
      EXPECT_EQ(quarantined_now.count(IndexArmKey(*idx)), 0u)
          << "quarantined index left standing, seed=" << seed
          << " tick=" << tick;
    }
    if (!quarantined_now.empty()) result.quarantine_triggered = true;

    // Quarantine ↔ fingerprint contract at the drift tick: schema/stats
    // drift releases, a pure mix shift does not.
    if (tick == 4 && !quarantined_before.empty()) {
      if (drift == DriftKind::kMixShift) {
        EXPECT_EQ(report.quarantine_released, 0u)
            << "mix shift must not release quarantine, seed=" << seed;
      } else {
        EXPECT_EQ(report.quarantine_released, quarantined_before.size())
            << "schema/stats drift must release quarantine, seed="
            << seed;
      }
    }

    transcript << "== tick " << tick << "\n" << TickSignature(report);
    if (gate != nullptr) transcript << GateSignature(*gate);
  }
  transcript << FinalCatalogSignature(db);
  result.signature = transcript.str();
  return result;
}

/// 25 schedules per shard × 8 shards = 200 seeds, each run at 1, 2, and
/// 8 threads and required to produce byte-identical transcripts.
class DriftChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DriftChaosTest, QuarantineHoldsAndSchedulesAreBitIdentical) {
  FaultRegistry::Instance().DisarmAll();
  const uint64_t shard = GetParam();
  int quarantines = 0;
  for (uint64_t i = 0; i < 25; ++i) {
    const uint64_t seed = shard * 25 + i;
    const ScheduleResult serial = RunDriftSchedule(seed, 1);
    ASSERT_FALSE(serial.signature.empty()) << "seed=" << seed;
    for (int threads : {2, 8}) {
      const ScheduleResult parallel = RunDriftSchedule(seed, threads);
      EXPECT_EQ(serial.signature, parallel.signature)
          << "drift schedule diverged, seed=" << seed
          << " threads=" << threads;
    }
    if (serial.quarantine_triggered) ++quarantines;
  }
  // The invariant must not pass vacuously: the regression storm is
  // engineered to quarantine in every schedule.
  EXPECT_EQ(quarantines, 25) << "shard=" << shard;
}

INSTANTIATE_TEST_SUITE_P(Shards, DriftChaosTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Tuner-level pins that the chaos loop exercises implicitly

TEST(ExplorationTunerTest, RollbackThenQuarantineThenDriftRelease) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(400, /*seed=*/11);
  workload::Workload w = ExplorationWorkload();
  workload::WorkloadMonitor monitor;

  ContinuousTunerOptions options;
  options.exploration.enabled = true;
  options.exploration.quarantine_after_offenses = 2;
  // Unconstrained budget: every candidate installs at once, so the same
  // index is present across both offense intervals (with the default
  // budget metering out one install per tick, no index would accumulate
  // two offenses).
  options.exploration.regret_budget_seconds = 0.0;
  options.aim.deployment.ordered = true;
  options.drop_after_idle_intervals = 100;
  options.shrink_after_idle_intervals = 100;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  const std::set<uint64_t> spiked = {
      sql::NormalizedFingerprint(w.queries[0].stmt)};
  auto tick = [&](bool spike) {
    FeedInterval(&monitor, w, spike ? spiked : std::set<uint64_t>{});
    Result<IntervalReport> r = tuner.Tick(w, &monitor);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  };

  IntervalReport t0 = tick(false);
  ASSERT_FALSE(t0.aim.recommended.empty()) << "fixture applied nothing";
  EXPECT_TRUE(t0.aim.deployment.ordered);
  EXPECT_GT(t0.aim.deployment.installed, 0u);
  (void)tick(false);  // second baseline window entry

  IntervalReport t2 = tick(true);  // spike: offense 1 → rollback
  EXPECT_FALSE(t2.rolled_back.empty());
  EXPECT_TRUE(t2.quarantined_now.empty());
  ASSERT_NE(tuner.exploration_gate(), nullptr);
  EXPECT_TRUE(tuner.exploration_gate()->quarantined_keys().empty());

  IntervalReport t3 = tick(true);  // spike again: offense 2 → quarantine
  EXPECT_FALSE(t3.quarantined_now.empty());
  const std::set<uint64_t> quarantined =
      tuner.exploration_gate()->quarantined_keys();
  EXPECT_FALSE(quarantined.empty());

  // While the fingerprint is stable the quarantined indexes stay out.
  IntervalReport t4 = tick(false);
  EXPECT_EQ(t4.quarantine_released, 0u);
  for (const CandidateIndex& c : t4.aim.recommended) {
    EXPECT_EQ(quarantined.count(IndexArmKey(c.def)), 0u);
  }

  // Schema drift: quarantine releases; the arms may compete again.
  catalog::ColumnDef col;
  col.name = "drift_col";
  col.type = catalog::ColumnType::kInt64;
  db.catalog().mutable_table(0)->columns.push_back(col);
  IntervalReport t5 = tick(false);
  EXPECT_EQ(t5.quarantine_released, quarantined.size());
  EXPECT_TRUE(tuner.exploration_gate()->quarantined_keys().empty());
}

TEST(ExplorationTunerTest, GateStatePersistsAcrossTunerRestart) {
  FaultRegistry::Instance().DisarmAll();
  const std::string path =
      ::testing::TempDir() + "/aim_gate_tuner_restart.bin";
  std::remove(path.c_str());
  storage::Database db = MakeUsersDb(400, /*seed=*/13);
  workload::Workload w = ExplorationWorkload();
  workload::WorkloadMonitor monitor;

  ContinuousTunerOptions options;
  options.exploration.enabled = true;
  options.exploration.quarantine_after_offenses = 2;
  options.exploration.regret_budget_seconds = 0.0;
  options.exploration.state_path = path;
  options.aim.deployment.ordered = true;
  options.drop_after_idle_intervals = 100;
  options.shrink_after_idle_intervals = 100;

  const std::set<uint64_t> spiked = {
      sql::NormalizedFingerprint(w.queries[0].stmt)};
  std::set<uint64_t> quarantined;
  {
    ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    for (int tick = 0; tick < 4; ++tick) {
      FeedInterval(&monitor, w,
                   tick >= 2 ? spiked : std::set<uint64_t>{});
      Result<IntervalReport> r = tuner.Tick(w, &monitor);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_NE(tuner.exploration_gate(), nullptr);
    quarantined = tuner.exploration_gate()->quarantined_keys();
    ASSERT_FALSE(quarantined.empty());
  }

  // A restarted tuner warm-starts the quarantine from disk: the banned
  // index does not come back even though the detector history is gone.
  ContinuousTuner restarted(&db, optimizer::CostModel(), options);
  FeedInterval(&monitor, w);
  Result<IntervalReport> r = restarted.Tick(w, &monitor);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(restarted.exploration_gate(), nullptr);
  EXPECT_EQ(restarted.exploration_gate()->quarantined_keys(), quarantined);
  for (const CandidateIndex& c : r.ValueOrDie().aim.recommended) {
    EXPECT_EQ(quarantined.count(IndexArmKey(c.def)), 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aim::core
