#include <gtest/gtest.h>

#include <map>

#include "optimizer/predicate.h"
#include "tests/test_util.h"

namespace aim::optimizer {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

AnalyzedQuery MustAnalyze(const storage::Database& db,
                          const std::string& sql) {
  sql::Statement stmt = MustParse(sql);
  Result<AnalyzedQuery> r = Analyze(stmt, db.catalog());
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " sql=" << sql;
  return r.ok() ? r.MoveValue() : AnalyzedQuery{};
}

TEST(AnalyzeTest, BindsUnqualifiedColumns) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq =
      MustAnalyze(db, "SELECT id FROM users WHERE org_id = 5");
  ASSERT_EQ(aq.instances.size(), 1u);
  ASSERT_EQ(aq.conjuncts.size(), 1u);
  EXPECT_EQ(aq.conjuncts[0].column.instance, 0);
  EXPECT_EQ(aq.conjuncts[0].column.column, 1u);  // org_id
  EXPECT_EQ(aq.conjuncts[0].kind, PredKind::kEq);
}

TEST(AnalyzeTest, UnknownColumnFails) {
  storage::Database db = MakeUsersDb(10);
  sql::Statement stmt = MustParse("SELECT nope FROM users");
  EXPECT_FALSE(Analyze(stmt, db.catalog()).ok());
}

TEST(AnalyzeTest, UnknownTableFails) {
  storage::Database db = MakeUsersDb(10);
  sql::Statement stmt = MustParse("SELECT id FROM ghosts");
  EXPECT_FALSE(Analyze(stmt, db.catalog()).ok());
}

TEST(AnalyzeTest, AmbiguousColumnFails) {
  storage::Database db = MakeOrdersDb(10, 10);
  // `status` exists in both users and orders.
  sql::Statement stmt =
      MustParse("SELECT status FROM users, orders WHERE users.id = "
                "orders.user_id");
  EXPECT_FALSE(Analyze(stmt, db.catalog()).ok());
}

TEST(AnalyzeTest, PredicateClassification) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT id FROM users WHERE org_id = 3 AND status IN (1, 2) AND "
      "score > 10 AND email LIKE 'user1%' AND payload LIKE '%x' AND "
      "created_at BETWEEN 5 AND 100");
  std::map<catalog::ColumnId, PredKind> kinds;
  for (const auto& p : aq.conjuncts) kinds[p.column.column] = p.kind;
  EXPECT_EQ(kinds[1], PredKind::kEq);          // org_id = 3
  EXPECT_EQ(kinds[2], PredKind::kIn);          // status IN
  EXPECT_EQ(kinds[3], PredKind::kRange);       // score > 10
  EXPECT_EQ(kinds[5], PredKind::kLikePrefix);  // email LIKE 'user1%'
  EXPECT_EQ(kinds[6], PredKind::kOther);       // payload LIKE '%x'
  EXPECT_EQ(kinds[4], PredKind::kRange);       // created_at BETWEEN
}

TEST(AnalyzeTest, IndexPrefixPredicateFlag) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db, "SELECT id FROM users WHERE org_id = 3 AND score > 10");
  for (const auto& p : aq.conjuncts) {
    if (p.column.column == 1) {
      EXPECT_TRUE(p.is_index_prefix());
    }
    if (p.column.column == 3) {
      EXPECT_FALSE(p.is_index_prefix());
      EXPECT_TRUE(p.is_sargable());
    }
  }
}

TEST(AnalyzeTest, RangeBoundsExtracted) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db, "SELECT id FROM users WHERE score > 10 AND score <= 90");
  ASSERT_EQ(aq.conjuncts.size(), 2u);
  const AtomicPredicate& gt = aq.conjuncts[0];
  EXPECT_TRUE(gt.has_lower);
  EXPECT_FALSE(gt.lower_inclusive);
  EXPECT_EQ(gt.lower, 10);
  const AtomicPredicate& le = aq.conjuncts[1];
  EXPECT_TRUE(le.has_upper);
  EXPECT_TRUE(le.upper_inclusive);
  EXPECT_EQ(le.upper, 90);
}

TEST(AnalyzeTest, ParameterizedPredicatesHaveNoBounds) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq =
      MustAnalyze(db, "SELECT id FROM users WHERE score > ?");
  ASSERT_EQ(aq.conjuncts.size(), 1u);
  EXPECT_EQ(aq.conjuncts[0].kind, PredKind::kRange);
  EXPECT_FALSE(aq.conjuncts[0].has_lower);
  EXPECT_FALSE(aq.conjuncts[0].has_upper);
}

TEST(AnalyzeTest, JoinEdgeExtraction) {
  storage::Database db = MakeOrdersDb(10, 10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT users.id FROM users, orders WHERE users.id = orders.user_id "
      "AND orders.status = 1");
  ASSERT_EQ(aq.joins.size(), 1u);
  EXPECT_NE(aq.joins[0].left.instance, aq.joins[0].right.instance);
  auto join_cols = aq.JoinColumnsOf(0);
  ASSERT_EQ(join_cols.size(), 1u);
  EXPECT_EQ(join_cols[0].second, 1);
}

TEST(AnalyzeTest, SelfJoinDistinctInstances) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT a.id FROM users a, users b WHERE a.org_id = b.org_id AND "
      "a.status = 1");
  ASSERT_EQ(aq.instances.size(), 2u);
  ASSERT_EQ(aq.joins.size(), 1u);
  EXPECT_EQ(aq.ConjunctsForInstance(0).size(), 1u);
  EXPECT_EQ(aq.ConjunctsForInstance(1).size(), 0u);
}

TEST(AnalyzeTest, DnfOfSimpleOr) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT id FROM users WHERE (org_id = 1 AND status = 2) OR "
      "(status = 3 AND score < 5)");
  EXPECT_TRUE(aq.dnf_exact);
  ASSERT_EQ(aq.dnf.size(), 2u);
  EXPECT_EQ(aq.dnf[0].predicates.size(), 2u);
  EXPECT_EQ(aq.dnf[1].predicates.size(), 2u);
  EXPECT_TRUE(aq.conjuncts.empty());  // no top-level conjuncts
}

TEST(AnalyzeTest, DnfDistributesConjunctsOverOr) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT id FROM users WHERE org_id = 1 AND (status = 2 OR "
      "score > 9)");
  EXPECT_TRUE(aq.dnf_exact);
  ASSERT_EQ(aq.dnf.size(), 2u);
  // Each factor carries the org_id conjunct plus one OR arm.
  for (const Factor& f : aq.dnf) {
    EXPECT_EQ(f.predicates.size(), 2u);
  }
  EXPECT_EQ(aq.conjuncts.size(), 1u);
}

TEST(AnalyzeTest, PaperExampleE2) {
  // E2 (Sec. IV-B1): (col1=? AND (col2=? OR col4<?) AND col3=?) should
  // factorize to {col1,col2,col3} and {col1,col4,col3} — two partial
  // orders in the paper's notation <{c1,c2,c3}> and <{c2... (adapted to
  // the users schema: org_id=c1, status=c2, score=c4, created_at=c3).
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT id FROM users WHERE org_id = 1 AND (status = 2 OR "
      "score < 3) AND created_at = 4");
  EXPECT_TRUE(aq.dnf_exact);
  ASSERT_EQ(aq.dnf.size(), 2u);
  for (const Factor& f : aq.dnf) EXPECT_EQ(f.predicates.size(), 3u);
}

TEST(AnalyzeTest, DnfBlowupFallsBack) {
  storage::Database db = MakeUsersDb(10);
  // 6 ORs of 2 -> 64 factors > kMaxDnfFactors (32): falls back.
  std::string sql = "SELECT id FROM users WHERE ";
  for (int i = 0; i < 6; ++i) {
    if (i) sql += " AND ";
    sql += "(org_id = " + std::to_string(i) + " OR status = " +
           std::to_string(i) + ")";
  }
  AnalyzedQuery aq = MustAnalyze(db, sql);
  EXPECT_FALSE(aq.dnf_exact);
  EXPECT_LE(aq.dnf.size(), kMaxDnfFactors);
}

TEST(AnalyzeTest, GroupByAndOrderByBound) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT org_id, COUNT(*) FROM users WHERE status = 1 GROUP BY "
      "org_id");
  EXPECT_TRUE(aq.has_group_by);
  EXPECT_TRUE(aq.has_aggregate);
  ASSERT_EQ(aq.instances[0].group_by_columns.size(), 1u);
  EXPECT_EQ(aq.instances[0].group_by_columns[0], 1u);

  AnalyzedQuery aq2 = MustAnalyze(
      db, "SELECT id FROM users ORDER BY created_at DESC LIMIT 3");
  EXPECT_TRUE(aq2.has_order_by);
  ASSERT_EQ(aq2.instances[0].order_by_columns.size(), 1u);
  EXPECT_FALSE(aq2.instances[0].order_by_columns[0].ascending);
  EXPECT_EQ(aq2.limit, 3);
}

TEST(AnalyzeTest, ReferencedColumnsCollected) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(
      db,
      "SELECT email FROM users WHERE org_id = 1 ORDER BY created_at");
  const auto& refs = aq.instances[0].referenced_columns;
  // email (5), org_id (1), created_at (4).
  EXPECT_EQ(refs.size(), 3u);
}

TEST(AnalyzeTest, SelectStarSetsFlag) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq = MustAnalyze(db, "SELECT * FROM users WHERE id = 1");
  EXPECT_TRUE(aq.instances[0].selects_all_columns);
  EXPECT_EQ(aq.instances[0].referenced_columns.size(), 7u);
}

TEST(AnalyzeTest, DmlUpdate) {
  storage::Database db = MakeUsersDb(10);
  sql::Statement stmt =
      MustParse("UPDATE users SET score = 5 WHERE org_id = 2");
  Result<AnalyzedQuery> r = Analyze(stmt, db.catalog());
  ASSERT_TRUE(r.ok());
  const AnalyzedQuery& aq = r.ValueOrDie();
  EXPECT_EQ(aq.dml, AnalyzedQuery::DmlKind::kUpdate);
  ASSERT_EQ(aq.updated_columns.size(), 1u);
  EXPECT_EQ(aq.updated_columns[0], 3u);  // score
  EXPECT_EQ(aq.conjuncts.size(), 1u);
}

TEST(AnalyzeTest, DmlDeleteAndInsert) {
  storage::Database db = MakeUsersDb(10);
  Result<AnalyzedQuery> del =
      Analyze(MustParse("DELETE FROM users WHERE id = 1"), db.catalog());
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.ValueOrDie().dml, AnalyzedQuery::DmlKind::kDelete);

  Result<AnalyzedQuery> ins = Analyze(
      MustParse("INSERT INTO users (id, org_id) VALUES (1, 2)"),
      db.catalog());
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.ValueOrDie().dml, AnalyzedQuery::DmlKind::kInsert);
}

TEST(AnalyzeTest, NullSafeEqIsIpp) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq =
      MustAnalyze(db, "SELECT id FROM users WHERE org_id <=> 5");
  ASSERT_EQ(aq.conjuncts.size(), 1u);
  EXPECT_TRUE(aq.conjuncts[0].is_index_prefix());
}

TEST(AnalyzeTest, IsNullClassification) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq =
      MustAnalyze(db, "SELECT id FROM users WHERE email IS NULL");
  ASSERT_EQ(aq.conjuncts.size(), 1u);
  EXPECT_EQ(aq.conjuncts[0].kind, PredKind::kIsNull);
  AnalyzedQuery aq2 =
      MustAnalyze(db, "SELECT id FROM users WHERE email IS NOT NULL");
  ASSERT_EQ(aq2.conjuncts.size(), 1u);
  EXPECT_EQ(aq2.conjuncts[0].kind, PredKind::kOther);
}

TEST(AnalyzeTest, NeIsNotSargable) {
  storage::Database db = MakeUsersDb(10);
  AnalyzedQuery aq =
      MustAnalyze(db, "SELECT id FROM users WHERE status <> 3");
  ASSERT_EQ(aq.conjuncts.size(), 1u);
  EXPECT_EQ(aq.conjuncts[0].kind, PredKind::kOther);
  EXPECT_FALSE(aq.conjuncts[0].is_sargable());
}

}  // namespace
}  // namespace aim::optimizer
