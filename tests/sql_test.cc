#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/value.h"

namespace aim::sql {
namespace {

// ---------- Value ------------------------------------------------------------

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, SqlLiteralRendering) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToSqlLiteral(), "-5");
  EXPECT_EQ(Value::Str("a'b").ToSqlLiteral(), "'a''b'");
}

// ---------- Lexer ------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto r = Lex("SELECT a, b FROM t WHERE x >= 10");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.ValueOrDie();
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks.back().kind, TokenKind::kEof);
}

TEST(LexerTest, OperatorVariants) {
  auto r = Lex("a <= b <> c != d <=> e < f > g");
  ASSERT_TRUE(r.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : r.ValueOrDie()) kinds.push_back(t.kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kLe),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kNullSafeEq),
            kinds.end());
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), TokenKind::kNe), 2);
}

TEST(LexerTest, NumbersAndNegatives) {
  auto r = Lex("x = -42");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.ValueOrDie();
  // x, =, -42, EOF
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[2].int_value, -42);
}

TEST(LexerTest, DoubleLiteral) {
  auto r = Lex("x = 3.25");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(r.ValueOrDie()[2].double_value, 3.25);
}

TEST(LexerTest, StringEscapes) {
  auto r = Lex("x = 'it''s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[2].text, "it's");
}

TEST(LexerTest, BackquotedIdentifier) {
  auto r = Lex("SELECT `from` FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(r.ValueOrDie()[1].text, "from");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("x = 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("x = #").ok());
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto r = Lex("select X fRoM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[0].text, "SELECT");
  EXPECT_EQ(r.ValueOrDie()[2].text, "FROM");
}

// ---------- Parser round trips ----------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParseStable) {
  const char* sql = GetParam();
  Result<Statement> first = Parse(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString() << " sql=" << sql;
  const std::string printed = ToSql(first.ValueOrDie());
  Result<Statement> second = Parse(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString()
                           << " printed=" << printed;
  EXPECT_EQ(printed, ToSql(second.ValueOrDie()));
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT a FROM t",
        "SELECT a, b FROM t WHERE c = 5",
        "SELECT * FROM t WHERE a > 1 AND b < 2",
        "SELECT a FROM t WHERE x IN (1, 2, 3)",
        "SELECT a FROM t WHERE x BETWEEN 1 AND 9",
        "SELECT a FROM t WHERE x IS NULL",
        "SELECT a FROM t WHERE x IS NOT NULL",
        "SELECT a FROM t WHERE x LIKE 'abc%'",
        "SELECT a FROM t WHERE (a = 1 AND b = 2) OR (c = 3 AND d = 4)",
        "SELECT a FROM t WHERE NOT (a = 1)",
        "SELECT a FROM t1, t2 WHERE t1.x = t2.y",
        "SELECT t1.a FROM t1 AS x, t2 WHERE x.k = t2.k",
        "SELECT a, COUNT(*) FROM t GROUP BY a",
        "SELECT a, SUM(b) FROM t WHERE c = 1 GROUP BY a",
        "SELECT a FROM t ORDER BY a",
        "SELECT a FROM t ORDER BY a DESC, b",
        "SELECT a FROM t LIMIT 10",
        "SELECT a FROM t WHERE b = ? LIMIT ?",
        "SELECT MIN(a) FROM t",
        "SELECT MAX(a) FROM t WHERE b <=> 3",
        "INSERT INTO t (a, b) VALUES (1, 'x')",
        "UPDATE t SET a = 5 WHERE b = 2",
        "UPDATE t SET a = 5, b = 6",
        "DELETE FROM t WHERE a IN (1, 2)",
        "DELETE FROM t"));

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  Result<Statement> r =
      Parse("SELECT a.x FROM t1 a JOIN t2 b ON a.k = b.k WHERE a.y = 1");
  ASSERT_TRUE(r.ok());
  const SelectStatement& s = *r.ValueOrDie().select;
  ASSERT_EQ(s.from.size(), 2u);
  ASSERT_NE(s.where, nullptr);
  // The folded WHERE must contain both the join and the filter.
  const std::string printed = ToSql(*s.where);
  EXPECT_NE(printed.find("a.k = b.k"), std::string::npos);
  EXPECT_NE(printed.find("a.y = 1"), std::string::npos);
}

TEST(ParserTest, InnerJoinKeyword) {
  Result<Statement> r =
      Parse("SELECT t1.a FROM t1 INNER JOIN t2 ON t1.k = t2.k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().select->from.size(), 2u);
}

TEST(ParserTest, AndOrPrecedence) {
  Result<Statement> r =
      Parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(r.ok());
  const Expr& where = *r.ValueOrDie().select->where;
  ASSERT_EQ(where.kind, Expr::Kind::kOr);
  ASSERT_EQ(where.children.size(), 2u);
  EXPECT_EQ(where.children[1]->kind, Expr::Kind::kAnd);
}

TEST(ParserTest, ColumnComparison) {
  Result<Statement> r =
      Parse("SELECT a FROM t WHERE t.x = t.y");
  ASSERT_TRUE(r.ok());
  const Expr& where = *r.ValueOrDie().select->where;
  EXPECT_EQ(where.kind, Expr::Kind::kComparison);
  EXPECT_EQ(where.children[1]->kind, Expr::Kind::kColumn);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("SELEC a FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a =").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t trailing garbage =").ok());
}

TEST(ParserTest, RejectsNotWithoutPredicate) {
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a NOT 5").ok());
}

TEST(ParserTest, ParseSelectRejectsDml) {
  EXPECT_FALSE(ParseSelect("DELETE FROM t").ok());
}

TEST(ParserTest, NegatedInBecomesNot) {
  Result<Statement> r = Parse("SELECT a FROM t WHERE b NOT IN (1, 2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().select->where->kind, Expr::Kind::kNot);
}

TEST(ParserTest, StatementClone) {
  Result<Statement> r = Parse(
      "SELECT a, COUNT(*) FROM t WHERE b IN (1,2) GROUP BY a ORDER BY a "
      "LIMIT 5");
  ASSERT_TRUE(r.ok());
  Statement clone = r.ValueOrDie().Clone();
  EXPECT_EQ(ToSql(clone), ToSql(r.ValueOrDie()));
}

// ---------- Normalizer -------------------------------------------------------

TEST(NormalizerTest, ReplacesLiterals) {
  Result<Statement> r = Parse("SELECT a FROM t WHERE b = 5 AND c > 2.5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NormalizedSql(r.ValueOrDie()),
            "SELECT a FROM t WHERE b = ? AND c > ?");
}

TEST(NormalizerTest, CollapsesInLists) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (1, 2)");
  Result<Statement> b = Parse("SELECT a FROM t WHERE b IN (3, 4, 5, 6)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(NormalizedSql(a.ValueOrDie()), NormalizedSql(b.ValueOrDie()));
  EXPECT_EQ(NormalizedFingerprint(a.ValueOrDie()),
            NormalizedFingerprint(b.ValueOrDie()));
}

TEST(NormalizerTest, LimitParameterized) {
  Result<Statement> a = Parse("SELECT a FROM t LIMIT 5");
  Result<Statement> b = Parse("SELECT a FROM t LIMIT 100");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(NormalizedFingerprint(a.ValueOrDie()),
            NormalizedFingerprint(b.ValueOrDie()));
}

TEST(NormalizerTest, DifferentStructureDifferentFingerprint) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b = 1");
  Result<Statement> b = Parse("SELECT a FROM t WHERE c = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(NormalizedFingerprint(a.ValueOrDie()),
            NormalizedFingerprint(b.ValueOrDie()));
}

TEST(NormalizerTest, DmlNormalization) {
  Result<Statement> a =
      Parse("UPDATE t SET a = 10 WHERE id = 5");
  Result<Statement> b =
      Parse("UPDATE t SET a = 99 WHERE id = 123");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(NormalizedSql(a.ValueOrDie()),
            "UPDATE t SET a = ? WHERE id = ?");
  EXPECT_EQ(NormalizedFingerprint(a.ValueOrDie()),
            NormalizedFingerprint(b.ValueOrDie()));
}

TEST(NormalizerTest, InsertNormalization) {
  Result<Statement> a = Parse("INSERT INTO t (a, b) VALUES (1, 'x')");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(NormalizedSql(a.ValueOrDie()),
            "INSERT INTO t (a, b) VALUES (?, ?)");
}

TEST(NormalizerTest, AlreadyNormalizedIsIdempotent) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b = ?");
  ASSERT_TRUE(a.ok());
  const std::string n1 = NormalizedSql(a.ValueOrDie());
  Result<Statement> b = Parse(n1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(n1, NormalizedSql(b.ValueOrDie()));
}

// ---------- Canonicalize -----------------------------------------------------
// IN is set membership: statements differing only in literal order or in
// duplicated IN-list literals are the same query and must share one SQL
// text (and with it the literal-inclusive what-if / candidate-cache keys,
// not just the normalized template).

TEST(CanonicalizeTest, SortsInListLiterals) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (3, 1, 2)");
  ASSERT_TRUE(a.ok());
  Canonicalize(&a.ValueOrDie());
  EXPECT_EQ(ToSql(a.ValueOrDie()), "SELECT a FROM t WHERE b IN (1, 2, 3)");
}

TEST(CanonicalizeTest, CollapsesDuplicateInListLiterals) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (2, 3, 1, 3, 2)");
  ASSERT_TRUE(a.ok());
  Canonicalize(&a.ValueOrDie());
  EXPECT_EQ(ToSql(a.ValueOrDie()), "SELECT a FROM t WHERE b IN (1, 2, 3)");
}

TEST(CanonicalizeTest, PermutedAndDuplicatedListsConverge) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (5, 9, 7)");
  Result<Statement> b = Parse("SELECT a FROM t WHERE b IN (9, 7, 5, 7)");
  ASSERT_TRUE(a.ok() && b.ok());
  Canonicalize(&a.ValueOrDie());
  Canonicalize(&b.ValueOrDie());
  EXPECT_EQ(ToSql(a.ValueOrDie()), ToSql(b.ValueOrDie()));
}

TEST(CanonicalizeTest, ReachesNestedAndDmlInLists) {
  Result<Statement> a = Parse(
      "SELECT a FROM t WHERE c = 1 AND (b IN (4, 2) OR b IN (9, 8, 9))");
  ASSERT_TRUE(a.ok());
  Canonicalize(&a.ValueOrDie());
  EXPECT_EQ(ToSql(a.ValueOrDie()),
            "SELECT a FROM t WHERE c = 1 AND (b IN (2, 4) OR b IN (8, 9))");

  Result<Statement> u =
      Parse("UPDATE t SET a = 1 WHERE b IN (6, 4, 6)");
  ASSERT_TRUE(u.ok());
  Canonicalize(&u.ValueOrDie());
  EXPECT_EQ(ToSql(u.ValueOrDie()), "UPDATE t SET a = 1 WHERE b IN (4, 6)");

  Result<Statement> d = Parse("DELETE FROM t WHERE b IN (3, 1)");
  ASSERT_TRUE(d.ok());
  Canonicalize(&d.ValueOrDie());
  EXPECT_EQ(ToSql(d.ValueOrDie()), "DELETE FROM t WHERE b IN (1, 3)");
}

TEST(CanonicalizeTest, ParameterizedListsKeepTheirOrder) {
  // A '?' carries no orderable value: the list is left exactly as
  // written (no sort, no dedup) so parameter positions stay stable.
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (3, ?, 1)");
  ASSERT_TRUE(a.ok());
  Canonicalize(&a.ValueOrDie());
  EXPECT_EQ(ToSql(a.ValueOrDie()), "SELECT a FROM t WHERE b IN (3, ?, 1)");
}

TEST(CanonicalizeTest, IsIdempotent) {
  Result<Statement> a = Parse("SELECT a FROM t WHERE b IN (3, 1, 2, 1)");
  ASSERT_TRUE(a.ok());
  Canonicalize(&a.ValueOrDie());
  const std::string once = ToSql(a.ValueOrDie());
  Canonicalize(&a.ValueOrDie());
  EXPECT_EQ(once, ToSql(a.ValueOrDie()));
}

}  // namespace
}  // namespace aim::sql
