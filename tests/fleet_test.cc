// Fleet-scale multi-tenant tuning suite (`ctest -L fleet`): the
// benefit-ranked scheduler, the global budget, the schema-keyed shared
// what-if cache store, atomic snapshot persistence, the stats
// aggregator's at-least-once dedup, and — the core contract — per-tenant
// decisions bit-identical to isolated single-tenant ContinuousTuner runs
// at 1, 2, and 8 threads. Pair with AIM_SANITIZE=thread for the TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/continuous.h"
#include "core/fleet.h"
#include "obs/trace.h"
#include "optimizer/what_if_cache.h"
#include "support/stats_exporter.h"
#include "workload/tenants.h"

namespace aim {
namespace {

workload::TenantFleetOptions SmallFleetOptions(int tenants, int families) {
  workload::TenantFleetOptions options;
  options.tenants = tenants;
  options.families = families;
  options.seed = 42;
  options.scale = 0.3;
  options.queries_per_tenant = 6;
  return options;
}

void AppendIndexDef(std::ostringstream* out, const catalog::IndexDef& def) {
  *out << "t" << def.table;
  for (catalog::ColumnId col : def.columns) *out << "," << col;
}

/// Everything decision-relevant about one tuning interval, doubles in
/// hexfloat so "close" never passes for "identical".
std::string ReportSignature(const core::IntervalReport& report) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "degraded=" << report.degraded << "\n";
  for (const core::CandidateIndex& c : report.aim.recommended) {
    out << "idx ";
    AppendIndexDef(&out, c.def);
    out << " benefit=" << c.benefit << "\n";
  }
  for (const core::QueryValidation& v : report.aim.validation.per_query) {
    out << "q" << v.fingerprint << " before=" << v.cpu_before
        << " after=" << v.cpu_after << "\n";
  }
  for (const catalog::IndexDef& d : report.dropped) {
    out << "dropped ";
    AppendIndexDef(&out, d);
    out << "\n";
  }
  for (const auto& [old_def, new_def] : report.shrunk) {
    out << "shrunk ";
    AppendIndexDef(&out, old_def);
    out << " -> ";
    AppendIndexDef(&out, new_def);
    out << "\n";
  }
  return out.str();
}

/// Final physical design of one tenant database.
std::string CatalogSignature(const storage::Database& db) {
  std::ostringstream out;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, true)) {
    out << "final ";
    AppendIndexDef(&out, *idx);
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Tenant fleet generator

TEST(TenantFleetTest, DeterministicAndFamilyStructured) {
  const workload::TenantFleetOptions options = SmallFleetOptions(6, 3);
  Result<std::vector<workload::GeneratedTenant>> a =
      workload::GenerateTenantFleet(options);
  Result<std::vector<workload::GeneratedTenant>> b =
      workload::GenerateTenantFleet(options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const std::vector<workload::GeneratedTenant>& fleet = a.ValueOrDie();
  ASSERT_EQ(fleet.size(), 6u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    const workload::GeneratedTenant& t = fleet[i];
    EXPECT_EQ(t.name, b.ValueOrDie()[i].name);
    EXPECT_EQ(t.family, static_cast<int>(i) % 3);
    EXPECT_EQ(t.workload.queries.size(), 6u);
    // Same options => bit-identical databases.
    EXPECT_EQ(t.db.catalog().SchemaStatsFingerprint(),
              b.ValueOrDie()[i].db.catalog().SchemaStatsFingerprint());
  }
  // Same-family tenants share one fingerprint; families differ.
  EXPECT_EQ(fleet[0].db.catalog().SchemaStatsFingerprint(),
            fleet[3].db.catalog().SchemaStatsFingerprint());
  EXPECT_NE(fleet[0].db.catalog().SchemaStatsFingerprint(),
            fleet[1].db.catalog().SchemaStatsFingerprint());
  EXPECT_NE(fleet[1].db.catalog().SchemaStatsFingerprint(),
            fleet[2].db.catalog().SchemaStatsFingerprint());
}

// ---------------------------------------------------------------------------
// The core fleet contract: scheduling and sharing change WHEN a tenant is
// tuned, never WHAT a tick decides.

TEST(FleetEquivalenceTest, BitIdenticalToIsolatedTunersAcrossThreads) {
  const workload::TenantFleetOptions gen = SmallFleetOptions(6, 3);
  constexpr int kIntervals = 3;

  // Baseline: each tenant tuned in isolation by its own ContinuousTuner
  // on a private database copy — no shared pool, no shared cache.
  std::vector<std::string> baseline;
  {
    Result<std::vector<workload::GeneratedTenant>> fleet =
        workload::GenerateTenantFleet(gen);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      core::ContinuousTuner tuner(&t.db, optimizer::CostModel(), {});
      std::string sig;
      for (int i = 0; i < kIntervals; ++i) {
        Result<core::IntervalReport> r = tuner.Tick(t.workload, nullptr);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_FALSE(r.ValueOrDie().degraded)
            << r.ValueOrDie().error.ToString();
        sig += ReportSignature(r.ValueOrDie());
      }
      sig += CatalogSignature(t.db);
      baseline.push_back(std::move(sig));
    }
  }

  for (int threads : {1, 2, 8}) {
    Result<std::vector<workload::GeneratedTenant>> fleet =
        workload::GenerateTenantFleet(gen);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    core::FleetTunerOptions options;
    options.num_threads = threads;  // budget left unconstrained
    core::FleetTuner tuner(options);
    for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      tuner.AddTenant(t.name, &t.db, &t.workload);
    }
    std::vector<std::string> sigs(tuner.tenant_count());
    for (int i = 0; i < kIntervals; ++i) {
      Result<core::FleetIntervalReport> r = tuner.RunInterval();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const core::FleetIntervalReport& report = r.ValueOrDie();
      EXPECT_EQ(report.tenants_tuned, tuner.tenant_count());
      EXPECT_EQ(report.tenants_skipped_budget, 0u);
      EXPECT_EQ(report.degraded_ticks, 0u);
      for (size_t t = 0; t < report.outcomes.size(); ++t) {
        EXPECT_TRUE(report.outcomes[t].tuned);
        sigs[t] += ReportSignature(report.outcomes[t].report);
      }
    }
    for (size_t t = 0; t < fleet.ValueOrDie().size(); ++t) {
      sigs[t] += CatalogSignature(fleet.ValueOrDie()[t].db);
      EXPECT_EQ(sigs[t], baseline[t])
          << "tenant " << fleet.ValueOrDie()[t].name << " diverged at "
          << threads << " threads";
    }
    // Same-schema tenants landed in the same cache store.
    EXPECT_EQ(tuner.cache_store()->store_count(), 3u);
  }
}

// ---------------------------------------------------------------------------
// Scheduler: budget admission and aging

TEST(FleetSchedulerTest, MaxTenantsBudgetAgingPreventsStarvation) {
  Result<std::vector<workload::GeneratedTenant>> fleet =
      workload::GenerateTenantFleet(SmallFleetOptions(4, 2));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  core::FleetTunerOptions options;
  options.budget.max_tenants = 1;
  core::FleetTuner tuner(options);
  for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
    tuner.AddTenant(t.name, &t.db, &t.workload);
  }
  std::vector<int> tuned_count(4, 0);
  for (int i = 0; i < 8; ++i) {
    Result<core::FleetIntervalReport> r = tuner.RunInterval();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const core::FleetIntervalReport& report = r.ValueOrDie();
    EXPECT_EQ(report.tenants_tuned, 1u);
    EXPECT_EQ(report.tenants_skipped_budget, 3u);
    for (size_t t = 0; t < report.outcomes.size(); ++t) {
      if (report.outcomes[t].tuned) ++tuned_count[t];
      EXPECT_NE(report.outcomes[t].tuned,
                report.outcomes[t].skipped_for_budget);
    }
  }
  // Additive aging: every tenant got its turn within 8 intervals.
  for (size_t t = 0; t < tuned_count.size(); ++t) {
    EXPECT_GE(tuned_count[t], 1) << "tenant " << t << " starved";
  }
}

TEST(FleetSchedulerTest, CpuBudgetIsSoftForTheTopTenantOnly) {
  Result<std::vector<workload::GeneratedTenant>> fleet =
      workload::GenerateTenantFleet(SmallFleetOptions(3, 3));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  core::FleetTunerOptions options;
  // Far below any tenant's cost estimate: only the top-ranked tenant is
  // admitted (an interval always makes progress), everyone else skips.
  options.budget.cpu_seconds = 1e-9;
  core::FleetTuner tuner(options);
  for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
    tuner.AddTenant(t.name, &t.db, &t.workload);
  }
  Result<core::FleetIntervalReport> r = tuner.RunInterval();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().tenants_tuned, 1u);
  EXPECT_EQ(r.ValueOrDie().tenants_skipped_budget, 2u);
}

// ---------------------------------------------------------------------------
// Schema-keyed shared cache store

TEST(FleetCacheStoreTest, SameFamilyTenantsShareOneStore) {
  Result<std::vector<workload::GeneratedTenant>> fleet =
      workload::GenerateTenantFleet(SmallFleetOptions(4, 2));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  core::FleetTuner tuner;
  for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
    tuner.AddTenant(t.name, &t.db, &t.workload);
  }
  Result<core::FleetIntervalReport> r = tuner.RunInterval();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const core::FleetIntervalReport& report = r.ValueOrDie();
  EXPECT_EQ(tuner.cache_store()->store_count(), 2u);
  // Registration order 0(f0) 1(f1) 2(f0) 3(f1) with equal priorities:
  // the first tenant of each family creates the store, the second finds
  // it warm.
  EXPECT_FALSE(report.outcomes[0].cache_shared);
  EXPECT_FALSE(report.outcomes[1].cache_shared);
  EXPECT_TRUE(report.outcomes[2].cache_shared);
  EXPECT_TRUE(report.outcomes[3].cache_shared);
}

TEST(FleetCacheStoreTest, SnapshotDirWarmStartsARestartedFleet) {
  const std::string dir = ::testing::TempDir();
  const workload::TenantFleetOptions gen = SmallFleetOptions(2, 2);
  core::FleetTunerOptions options;
  options.cache_store.snapshot_dir = dir;
  {
    Result<std::vector<workload::GeneratedTenant>> fleet =
        workload::GenerateTenantFleet(gen);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    // Stale snapshots from a previous test run would warm-start the
    // "cold" fleet below; start from a clean slate.
    for (const workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      std::remove(optimizer::SnapshotPathForFingerprint(
                      dir + "/whatif_cache",
                      t.db.catalog().SchemaStatsFingerprint())
                      .c_str());
    }
    core::FleetTuner tuner(options);
    for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      tuner.AddTenant(t.name, &t.db, &t.workload);
    }
    ASSERT_TRUE(tuner.RunInterval().ok());
    EXPECT_EQ(tuner.cache_store()->snapshot_loads(), 0u);
  }
  {
    // A brand-new fleet service over the same schemas: both stores load
    // from the snapshots the previous instance persisted.
    Result<std::vector<workload::GeneratedTenant>> fleet =
        workload::GenerateTenantFleet(gen);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    core::FleetTuner tuner(options);
    for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      tuner.AddTenant(t.name, &t.db, &t.workload);
    }
    Result<core::FleetIntervalReport> r = tuner.RunInterval();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(tuner.cache_store()->snapshot_loads(), 2u);
    EXPECT_EQ(r.ValueOrDie().degraded_ticks, 0u);
  }
}

TEST(FleetCacheStoreTest, TrimEvictsLeastRecentlyUsedStores) {
  core::FleetCacheStoreOptions options;
  options.max_stores = 2;
  core::FleetCacheStore store(options);
  store.GetOrCreate(1);
  store.GetOrCreate(2);
  store.GetOrCreate(1);  // refresh 1
  store.GetOrCreate(3);
  EXPECT_EQ(store.store_count(), 3u);
  store.TrimToCapacity();
  EXPECT_EQ(store.store_count(), 2u);
  // 2 was the least recently used; 1 and 3 survive. Recreating 2 is a
  // fresh store, finding 1/3 is not.
  const size_t before = store.store_count();
  store.GetOrCreate(1);
  store.GetOrCreate(3);
  EXPECT_EQ(store.store_count(), before);
  store.GetOrCreate(2);
  EXPECT_EQ(store.store_count(), before + 1);
}

// ---------------------------------------------------------------------------
// Atomic snapshot persistence (the SaveTo collision fix)

TEST(SnapshotAtomicityTest, PathsAreNamespacedByFingerprint) {
  const std::string a = optimizer::SnapshotPathForFingerprint("/x/c.bin", 1);
  const std::string b = optimizer::SnapshotPathForFingerprint("/x/c.bin", 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("/x/c.bin", 0), 0u);
}

TEST(SnapshotAtomicityTest, ConcurrentSaversNeverTearTheSnapshot) {
  const std::string path =
      ::testing::TempDir() + "/concurrent_whatif_snapshot.bin";
  std::remove(path.c_str());
  // Two caches with *different* contents hammering one path: any
  // interleaving must leave a loadable snapshot (one writer's complete
  // file), never a torn mix.
  optimizer::WhatIfCache a(64), b(64);
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(a.GetOrCompute({i, 1}, [i] {
                   return Result<double>(static_cast<double>(i));
                 }).ok());
    ASSERT_TRUE(b.GetOrCompute({i + 100, 2}, [i] {
                   return Result<double>(static_cast<double>(i) * 2.0);
                 }).ok());
  }
  constexpr uint64_t kFingerprint = 77;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const optimizer::WhatIfCache& cache = (t % 2 == 0) ? a : b;
      for (int i = 0; i < 25; ++i) {
        Status st =
            optimizer::SaveSnapshotAtomic(cache, path, kFingerprint);
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  optimizer::WhatIfCache loaded(64);
  Result<bool> adopted = loaded.LoadFrom(in, kFingerprint);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_TRUE(adopted.ValueOrDie());
  EXPECT_EQ(loaded.size(), 16u);
}

// ---------------------------------------------------------------------------
// StatsExporter under concurrent multi-tenant publishers (satellite 3)

TEST(StatsExporterConcurrencyTest, ExportsAreUnbrokenMonotoneBatches) {
  constexpr int kReplicas = 4;
  constexpr int kPublishers = 4;
  constexpr int kExportsPerPublisher = 25;
  std::vector<workload::WorkloadMonitor> monitors(kReplicas);
  support::StatsExporter exporter;
  for (int r = 0; r < kReplicas; ++r) {
    exporter.RegisterReplica("tenant-" + std::to_string(r), &monitors[r]);
  }
  // The subscriber runs under the exporter's lock, so appends are
  // already serialized; the log is the ground truth for batching.
  std::vector<std::pair<int, std::string>> log;
  exporter.Subscribe([&](const support::StatsMessage& msg) {
    log.emplace_back(msg.interval, msg.replica);
  });

  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    executor::ExecutionMetrics m;
    m.rows_examined = 100;
    m.rows_sent = 10;
    m.cpu_seconds = 0.001;
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      monitors[i % kReplicas].RecordKeyed(i % 7, "q", m);
      ++i;
    }
  });
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&] {
      for (int i = 0; i < kExportsPerPublisher; ++i) {
        ASSERT_TRUE(exporter.ExportInterval().ok());
      }
    });
  }
  for (std::thread& t : publishers) t.join();
  stop.store(true);
  traffic.join();

  constexpr int kTotal = kPublishers * kExportsPerPublisher;
  EXPECT_EQ(exporter.intervals_exported(), kTotal);
  ASSERT_EQ(log.size(), static_cast<size_t>(kTotal) * kReplicas);
  // Unbroken batches: the log is exactly interval 0 × kReplicas, then
  // interval 1 × kReplicas, ... — no interleaving, no torn batch, and
  // interval numbers strictly monotone across batches.
  for (int batch = 0; batch < kTotal; ++batch) {
    for (int r = 0; r < kReplicas; ++r) {
      const auto& [interval, replica] = log[batch * kReplicas + r];
      EXPECT_EQ(interval, batch);
      EXPECT_EQ(replica, "tenant-" + std::to_string(r));
    }
  }
}

TEST(StatsExporterConcurrencyTest, AtLeastOnceSurvivesConcurrentFaults) {
  constexpr int kReplicas = 3;
  std::vector<workload::WorkloadMonitor> monitors(kReplicas);
  support::StatsExporter exporter;
  for (int r = 0; r < kReplicas; ++r) {
    exporter.RegisterReplica("tenant-" + std::to_string(r), &monitors[r]);
  }
  support::FleetAggregator aggregator;
  aggregator.AttachTo(&exporter);

  executor::ExecutionMetrics m;
  m.rows_examined = 100;
  m.rows_sent = 10;
  m.cpu_seconds = 0.001;
  for (int r = 0; r < kReplicas; ++r) monitors[r].RecordKeyed(1, "q", m);

  {
    FaultSpec spec;
    spec.code = Status::Code::kUnavailable;
    spec.probability = 0.3;
    ScopedFault fault("support.stats.export", spec);
    std::vector<std::thread> publishers;
    for (int p = 0; p < 3; ++p) {
      publishers.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          // Failures are expected; retries redeliver (at-least-once).
          (void)exporter.ExportInterval();
        }
      });
    }
    for (std::thread& t : publishers) t.join();
  }
  // A final clean export: any partially-published (never-committed) last
  // interval is redelivered in full, so every tenant's dedup'd view lines
  // up with the committed-interval count.
  ASSERT_TRUE(exporter.ExportInterval().ok());

  const int committed = exporter.intervals_exported();
  EXPECT_GT(committed, 0);
  // Every committed interval folded exactly once per tenant despite
  // redelivered messages from failed attempts.
  EXPECT_EQ(aggregator.tenant_count(), static_cast<size_t>(kReplicas));
  for (const support::TenantStatsView& view : aggregator.views()) {
    EXPECT_EQ(view.messages, static_cast<uint64_t>(committed));
    EXPECT_EQ(view.last_interval, committed - 1);
  }
}

TEST(FleetAggregatorTest, DedupsByTenantAndInterval) {
  support::FleetAggregator aggregator;
  support::StatsMessage msg;
  msg.replica = "tenant-a";
  msg.interval = 0;
  workload::QueryStats q;
  q.fingerprint = 1;
  q.executions = 10;
  q.total_cpu_seconds = 2.0;
  q.sum_sent_to_read = 1.0;  // ddr_avg 0.1 => benefit 0.9 * cpu_avg
  msg.stats.push_back(q);
  aggregator.Ingest(msg);
  aggregator.Ingest(msg);  // redelivery
  const support::TenantStatsView view = aggregator.view("tenant-a");
  EXPECT_EQ(view.messages, 1u);
  EXPECT_EQ(aggregator.duplicates_dropped(), 1u);
  EXPECT_NEAR(view.last_delta_benefit_seconds, 10 * 0.9 * 0.2, 1e-12);
  EXPECT_NEAR(view.last_delta_cpu_seconds, 2.0, 1e-12);
  // A later interval folds normally.
  msg.interval = 1;
  aggregator.Ingest(msg);
  EXPECT_EQ(aggregator.view("tenant-a").messages, 2u);
  EXPECT_EQ(aggregator.view("tenant-a").last_interval, 1);
}

// ---------------------------------------------------------------------------
// Observability: fleet spans

TEST(FleetTracingTest, TenantSpansParentUnderIntervalSpan) {
  Result<std::vector<workload::GeneratedTenant>> fleet =
      workload::GenerateTenantFleet(SmallFleetOptions(2, 1));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  obs::Tracer tracer;
  obs::Tracer* previous = obs::Tracer::Install(&tracer);
  {
    core::FleetTunerOptions options;
    options.num_threads = 2;
    core::FleetTuner tuner(options);
    for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
      tuner.AddTenant(t.name, &t.db, &t.workload);
    }
    ASSERT_TRUE(tuner.RunInterval().ok());
  }
  obs::Tracer::Install(previous);
  ASSERT_TRUE(tracer.CheckBalanced().ok())
      << tracer.CheckBalanced().ToString();
  uint64_t interval_id = 0;
  size_t tenant_spans = 0;
  for (const obs::Tracer::SpanRecord& span : tracer.Snapshot()) {
    if (span.name == "fleet.interval") interval_id = span.id;
    if (span.name == "fleet.tenant") {
      ++tenant_spans;
      EXPECT_EQ(span.parent, interval_id);
    }
  }
  EXPECT_GT(interval_id, 0u);
  EXPECT_EQ(tenant_spans, 2u);
}

}  // namespace
}  // namespace aim
