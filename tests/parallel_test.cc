// Tests for the parallel what-if engine: the worker pool, the memoizing
// plan-cost cache, and — the load-bearing property — bit-identical
// advisor output at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/aim.h"
#include "optimizer/what_if.h"
#include "optimizer/what_if_cache.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4);
  std::future<int> f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroOrOneWorkerRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0);
  const auto tid = std::this_thread::get_id();
  std::future<bool> f =
      pool.Submit([tid] { return std::this_thread::get_id() == tid; });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> touched(kN, 0);
  common::ParallelFor(&pool, kN, [&](size_t i) { ++touched[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
  // Null pool: same contract, inline.
  std::vector<int> inline_touched(kN, 0);
  common::ParallelFor(nullptr, kN, [&](size_t i) { ++inline_touched[i]; });
  EXPECT_EQ(touched, inline_touched);
}

TEST(ThreadPoolTest, DispatchFaultFallsBackToInlineExecution) {
  FaultRegistry::Instance().DisarmAll();
  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  spec.probability = 1.0;
  spec.fail_times = -1;
  FaultRegistry::Instance().Arm("common.pool.dispatch", spec, /*seed=*/3);

  common::ThreadPool pool(4);
  std::vector<int> values(64, 0);
  common::ParallelFor(&pool, values.size(),
                      [&](size_t i) { values[i] = static_cast<int>(i); });
  FaultRegistry::Instance().DisarmAll();
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], static_cast<int>(i));
  }
}

// ---------------------------------------------------------------------------
// WhatIfCache

TEST(WhatIfCacheTest, HitOnRepeatMissOnFirstTouch) {
  optimizer::WhatIfCache cache(16);
  const optimizer::WhatIfCache::Key key{1, 2};
  int computed = 0;
  auto compute = [&]() -> Result<double> {
    ++computed;
    return 7.5;
  };
  ASSERT_EQ(cache.GetOrCompute(key, compute).ValueOrDie(), 7.5);
  ASSERT_EQ(cache.GetOrCompute(key, compute).ValueOrDie(), 7.5);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(WhatIfCacheTest, ConfigurationFingerprintIsPartOfTheKey) {
  optimizer::WhatIfCache cache(16);
  int computed = 0;
  auto compute = [&]() -> Result<double> {
    return static_cast<double>(++computed);
  };
  // Same statement, two configurations: two distinct entries.
  EXPECT_EQ(cache.GetOrCompute({10, 100}, compute).ValueOrDie(), 1.0);
  EXPECT_EQ(cache.GetOrCompute({10, 200}, compute).ValueOrDie(), 2.0);
  EXPECT_EQ(cache.GetOrCompute({10, 100}, compute).ValueOrDie(), 1.0);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(WhatIfCacheTest, BoundedSizeEvictsLeastRecentlyUsed) {
  optimizer::WhatIfCache cache(2);
  auto compute = [] { return Result<double>(1.0); };
  ASSERT_TRUE(cache.GetOrCompute({1, 0}, compute).ok());
  ASSERT_TRUE(cache.GetOrCompute({2, 0}, compute).ok());
  // Touch {1,0} so {2,0} becomes the LRU victim.
  ASSERT_TRUE(cache.GetOrCompute({1, 0}, compute).ok());
  ASSERT_TRUE(cache.GetOrCompute({3, 0}, compute).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Peek({1, 0}).has_value());
  EXPECT_FALSE(cache.Peek({2, 0}).has_value());
  EXPECT_TRUE(cache.Peek({3, 0}).has_value());
}

TEST(WhatIfCacheTest, FailedComputationsAreNotCached) {
  optimizer::WhatIfCache cache(16);
  int attempts = 0;
  auto failing = [&]() -> Result<double> {
    ++attempts;
    return Status::Internal("optimizer exploded");
  };
  EXPECT_FALSE(cache.GetOrCompute({5, 5}, failing).ok());
  EXPECT_FALSE(cache.GetOrCompute({5, 5}, failing).ok());
  EXPECT_EQ(attempts, 2);  // second call re-computes: failure not cached
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WhatIfCacheTest, SingleFlightComputesConcurrentMissesOnce) {
  optimizer::WhatIfCache cache(16);
  constexpr int kThreads = 8;
  std::atomic<int> computed{0};
  auto slow_compute = [&]() -> Result<double> {
    computed.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return 3.25;
  };
  std::vector<std::thread> threads;
  std::vector<double> results(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.GetOrCompute({9, 9}, slow_compute).ValueOrDie();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1);  // exactly one real computation
  for (double r : results) EXPECT_EQ(r, 3.25);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<uint64_t>(kThreads - 1));
}

// ---------------------------------------------------------------------------
// WhatIfCache persistence

TEST(WhatIfCachePersistenceTest, RoundTripReproducesEntriesColdCounters) {
  optimizer::WhatIfCache cache(16);
  auto cost = [](double v) {
    return [v]() -> Result<double> { return v; };
  };
  ASSERT_TRUE(cache.GetOrCompute({1, 10}, cost(1.5)).ok());
  ASSERT_TRUE(cache.GetOrCompute({2, 10}, cost(2.5)).ok());
  ASSERT_TRUE(cache.GetOrCompute({3, 20}, cost(3.5)).ok());

  std::stringstream snapshot;
  ASSERT_TRUE(cache.SaveTo(snapshot, /*catalog_fingerprint=*/77).ok());

  optimizer::WhatIfCache restored(16);
  Result<bool> adopted = restored.LoadFrom(snapshot, 77);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_TRUE(adopted.ValueOrDie());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.Peek({1, 10}).value(), 1.5);
  EXPECT_EQ(restored.Peek({2, 10}).value(), 2.5);
  EXPECT_EQ(restored.Peek({3, 20}).value(), 3.5);
  // Counters start cold: hits against loaded entries are how the value
  // of a carried cache is measured.
  EXPECT_EQ(restored.stats().hits, 0u);
  EXPECT_EQ(restored.stats().misses, 0u);
  // Every loaded key is served without recomputation.
  auto never = []() -> Result<double> {
    ADD_FAILURE() << "loaded entry recomputed";
    return -1.0;
  };
  EXPECT_EQ(restored.GetOrCompute({1, 10}, never).ValueOrDie(), 1.5);
  EXPECT_EQ(restored.stats().hits, 1u);
}

TEST(WhatIfCachePersistenceTest, CatalogFingerprintMismatchIsRejected) {
  optimizer::WhatIfCache cache(16);
  ASSERT_TRUE(
      cache.GetOrCompute({1, 1}, [] { return Result<double>(1.0); }).ok());
  std::stringstream snapshot;
  ASSERT_TRUE(cache.SaveTo(snapshot, 77).ok());

  // The snapshot was taken against catalog 77; a tuner on catalog 78
  // (schema or statistics drifted) must start cold, not stale.
  optimizer::WhatIfCache restored(16);
  Result<bool> adopted = restored.LoadFrom(snapshot, 78);
  ASSERT_TRUE(adopted.ok());
  EXPECT_FALSE(adopted.ValueOrDie());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(WhatIfCachePersistenceTest, CorruptOrTruncatedSnapshotStaysCold) {
  optimizer::WhatIfCache cache(16);
  ASSERT_TRUE(
      cache.GetOrCompute({1, 1}, [] { return Result<double>(1.0); }).ok());
  ASSERT_TRUE(
      cache.GetOrCompute({2, 2}, [] { return Result<double>(2.0); }).ok());
  std::stringstream snapshot;
  ASSERT_TRUE(cache.SaveTo(snapshot, 7).ok());
  const std::string bytes = snapshot.str();

  {
    // Garbage magic.
    std::stringstream garbage("definitely not a snapshot");
    optimizer::WhatIfCache restored(16);
    Result<bool> adopted = restored.LoadFrom(garbage, 7);
    ASSERT_TRUE(adopted.ok());
    EXPECT_FALSE(adopted.ValueOrDie());
    EXPECT_EQ(restored.size(), 0u);
  }
  {
    // Truncated mid-entry: the whole snapshot is rejected, and entries
    // already present in the target cache survive untouched.
    std::stringstream truncated(bytes.substr(0, bytes.size() - 4));
    optimizer::WhatIfCache restored(16);
    ASSERT_TRUE(restored
                    .GetOrCompute({9, 9},
                                  [] { return Result<double>(9.0); })
                    .ok());
    Result<bool> adopted = restored.LoadFrom(truncated, 7);
    ASSERT_TRUE(adopted.ok());
    EXPECT_FALSE(adopted.ValueOrDie());
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored.Peek({9, 9}).value(), 9.0);
  }
  {
    // Empty stream (missing snapshot file): cold start, no error.
    std::stringstream empty;
    optimizer::WhatIfCache restored(16);
    Result<bool> adopted = restored.LoadFrom(empty, 7);
    ASSERT_TRUE(adopted.ok());
    EXPECT_FALSE(adopted.ValueOrDie());
  }
}

TEST(WhatIfCachePersistenceTest, LoadFaultPointInjectsFailure) {
  optimizer::WhatIfCache cache(16);
  ASSERT_TRUE(
      cache.GetOrCompute({1, 1}, [] { return Result<double>(1.0); }).ok());
  std::stringstream snapshot;
  ASSERT_TRUE(cache.SaveTo(snapshot, 7).ok());

  FaultRegistry::Instance().DisarmAll();
  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  ScopedFault fault("whatif.cache.load", spec);
  optimizer::WhatIfCache restored(16);
  Result<bool> adopted = restored.LoadFrom(snapshot, 7);
  ASSERT_FALSE(adopted.ok());
  EXPECT_EQ(adopted.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(restored.size(), 0u);  // failed load leaves the cache cold
}

TEST(WhatIfCachePersistenceTest, SmallerCapacityKeepsMostRecentEntries) {
  optimizer::WhatIfCache cache(8);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(cache
                    .GetOrCompute({i, 0},
                                  [i] {
                                    return Result<double>(
                                        static_cast<double>(i));
                                  })
                    .ok());
  }
  std::stringstream snapshot;
  ASSERT_TRUE(cache.SaveTo(snapshot, 7).ok());

  // Entries are serialized MRU-first, so a smaller restored cache keeps
  // the hottest ones: {5,0} (most recent) survives, {0,0} does not.
  optimizer::WhatIfCache restored(3);
  Result<bool> adopted = restored.LoadFrom(snapshot, 7);
  ASSERT_TRUE(adopted.ok());
  EXPECT_TRUE(adopted.ValueOrDie());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_TRUE(restored.Peek({5, 0}).has_value());
  EXPECT_TRUE(restored.Peek({4, 0}).has_value());
  EXPECT_TRUE(restored.Peek({3, 0}).has_value());
  EXPECT_FALSE(restored.Peek({0, 0}).has_value());
}

// ---------------------------------------------------------------------------
// Logical configuration fingerprint: the cross-interval reuse enabler

TEST(ConfigFingerprintTest, OrderIndependentAndHypotheticalBlind) {
  storage::Database db = MakeUsersDb(300, /*seed=*/7);
  catalog::IndexDef a;
  a.table = db.catalog().FindTable("users").ValueOrDie();
  a.columns = {*db.catalog().table(a.table).FindColumn("org_id")};
  catalog::IndexDef b;
  b.table = a.table;
  b.columns = {*db.catalog().table(b.table).FindColumn("status"),
               *db.catalog().table(b.table).FindColumn("score")};

  // Same set, different staging order: same fingerprint.
  optimizer::WhatIfOptimizer ab(db.catalog(), optimizer::CostModel());
  ASSERT_TRUE(ab.SetConfiguration({a, b}).ok());
  optimizer::WhatIfOptimizer ba(db.catalog(), optimizer::CostModel());
  ASSERT_TRUE(ba.SetConfiguration({b, a}).ok());
  EXPECT_EQ(ab.config_fingerprint(), ba.config_fingerprint());

  // The same indexes created *for real* fingerprint identically to the
  // hypothetical staging — this is what lets a continuous tuner's carried
  // cache keep hitting after interval 1's recommendations materialize.
  storage::Database real_db = MakeUsersDb(300, /*seed=*/7);
  ASSERT_TRUE(real_db.CreateIndex(a).ok());
  ASSERT_TRUE(real_db.CreateIndex(b).ok());
  optimizer::WhatIfOptimizer real(real_db.catalog(),
                                  optimizer::CostModel());
  EXPECT_EQ(real.config_fingerprint(), ab.config_fingerprint());

  // And it still distinguishes genuinely different configurations.
  optimizer::WhatIfOptimizer only_a(db.catalog(), optimizer::CostModel());
  ASSERT_TRUE(only_a.SetConfiguration({a}).ok());
  EXPECT_NE(only_a.config_fingerprint(), ab.config_fingerprint());
}

// ---------------------------------------------------------------------------
// Cached WhatIfOptimizer

TEST(WhatIfParallelTest, StatementFingerprintKeepsLiterals) {
  const sql::Statement a =
      MustParse("SELECT id FROM users WHERE org_id = 3");
  const sql::Statement b =
      MustParse("SELECT id FROM users WHERE org_id = 4");
  EXPECT_NE(optimizer::FingerprintStatement(a),
            optimizer::FingerprintStatement(b));
  EXPECT_EQ(optimizer::FingerprintStatement(a),
            optimizer::FingerprintStatement(a));
}

TEST(WhatIfParallelTest, QueryCostMemoizedAcrossRepeatsAndConfigChanges) {
  storage::Database db = MakeUsersDb(500, /*seed=*/7);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  optimizer::WhatIfCache cache(64);
  what_if.set_cache(&cache);
  const sql::Statement stmt =
      MustParse("SELECT id FROM users WHERE org_id = 3");

  const double cost0 = what_if.QueryCost(stmt).ValueOrDie();
  EXPECT_EQ(what_if.call_count(), 1u);
  EXPECT_EQ(what_if.QueryCost(stmt).ValueOrDie(), cost0);
  EXPECT_EQ(what_if.call_count(), 1u);  // repeat served from cache

  // A configuration change re-keys the cache: the same statement must be
  // re-planned (the old entry is unreachable, not wrong).
  const uint64_t fp_before = what_if.config_fingerprint();
  catalog::IndexDef def;
  def.table = db.catalog().FindTable("users").ValueOrDie();
  def.columns = {*db.catalog().table(def.table).FindColumn("org_id")};
  ASSERT_TRUE(what_if.SetConfiguration({def}).ok());
  EXPECT_NE(what_if.config_fingerprint(), fp_before);
  const double cost1 = what_if.QueryCost(stmt).ValueOrDie();
  EXPECT_EQ(what_if.call_count(), 2u);
  EXPECT_LT(cost1, cost0);  // the hypothetical index helps this query

  // Dropping the configuration restores the original fingerprint, so the
  // very first entry is a hit again.
  what_if.ClearConfiguration();
  EXPECT_EQ(what_if.config_fingerprint(), fp_before);
  EXPECT_EQ(what_if.QueryCost(stmt).ValueOrDie(), cost0);
  EXPECT_EQ(what_if.call_count(), 2u);
}

TEST(WhatIfParallelTest, CloneSharesCacheAndCountsLocally) {
  storage::Database db = MakeUsersDb(500, /*seed=*/7);
  optimizer::WhatIfOptimizer master(db.catalog(), optimizer::CostModel());
  optimizer::WhatIfCache cache(64);
  master.set_cache(&cache);
  const sql::Statement stmt =
      MustParse("SELECT id FROM users WHERE org_id = 3");
  const double cost = master.QueryCost(stmt).ValueOrDie();

  optimizer::WhatIfOptimizer clone = master.Clone();
  EXPECT_EQ(clone.call_count(), 0u);
  EXPECT_EQ(clone.config_fingerprint(), master.config_fingerprint());
  // The clone's lookup hits the shared cache: no new optimizer call.
  EXPECT_EQ(clone.QueryCost(stmt).ValueOrDie(), cost);
  EXPECT_EQ(clone.call_count(), 0u);
  master.AddCalls(clone.call_count());
  EXPECT_EQ(master.call_count(), 1u);
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial pipeline equivalence

workload::Workload EquivalenceWorkload() {
  workload::Workload w;
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  // Duplicate of the first statement: exercises the plan-dedup path.
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 5.0).ok());
  // DML: a validation-replay barrier and a maintenance-cost source.
  EXPECT_TRUE(
      w.Add("UPDATE users SET score = 1 WHERE org_id = 3", 4.0).ok());
  return w;
}

/// Everything observable about a finished run, stringified bit-for-bit
/// (doubles via hexfloat so "close" never passes for "identical").
std::string ReportSignature(const core::AimReport& report,
                            const storage::Database& db) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const core::CandidateIndex& c : report.recommended) {
    out << "idx t" << c.def.table;
    for (catalog::ColumnId col : c.def.columns) out << "," << col;
    out << " benefit=" << c.benefit << " maint=" << c.maintenance
        << " size=" << c.size_bytes << "\n";
  }
  out << "what_if_calls=" << report.stats.what_if_calls << "\n";
  out << "cache h=" << report.stats.cache_hits
      << " m=" << report.stats.cache_misses << "\n";
  for (const core::QueryValidation& v : report.validation.per_query) {
    out << "q" << v.fingerprint << " before=" << v.cpu_before
        << " after=" << v.cpu_after << " imp=" << v.improved
        << " reg=" << v.regressed << "\n";
  }
  for (const std::string& e : report.explanations) out << e << "\n";
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, true)) {
    out << "final t" << idx->table;
    for (catalog::ColumnId col : idx->columns) out << "," << col;
    out << "\n";
  }
  return out.str();
}

TEST(WhatIfParallelTest, PipelineIsBitIdenticalAtAnyThreadCount) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto run = [&](int threads) {
    storage::Database db = base;
    core::AimOptions options;
    options.num_threads = threads;
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    Result<core::AimReport> r = aim.RunOnce(w, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return ReportSignature(r.ValueOrDie(), db);
  };

  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("idx "), std::string::npos)
      << "equivalence run recommended nothing:\n" << serial;
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(WhatIfParallelTest, CacheDisabledEngineMatchesToo) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto run = [&](int threads) {
    storage::Database db = base;
    core::AimOptions options;
    options.num_threads = threads;
    options.what_if_cache_entries = 0;  // the pre-memoization engine
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    Result<core::AimReport> r = aim.RunOnce(w, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return ReportSignature(r.ValueOrDie(), db);
  };

  EXPECT_EQ(run(1), run(8));
}

TEST(WhatIfParallelTest, CachedRunRecordsHitsAndSameRecommendation) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, /*seed=*/7);
  const workload::Workload w = EquivalenceWorkload();

  auto recommended_defs = [](const core::AimReport& report) {
    std::ostringstream out;
    for (const core::CandidateIndex& c : report.recommended) {
      out << c.def.table;
      for (catalog::ColumnId col : c.def.columns) out << "," << col;
      out << ";";
    }
    return out.str();
  };

  storage::Database cached_db = base;
  core::AimOptions cached_opts;  // cache on by default
  core::AutomaticIndexManager cached_aim(&cached_db,
                                         optimizer::CostModel(),
                                         cached_opts);
  Result<core::AimReport> cached = cached_aim.RunOnce(w, nullptr);
  ASSERT_TRUE(cached.ok());

  storage::Database plain_db = base;
  core::AimOptions plain_opts;
  plain_opts.what_if_cache_entries = 0;
  core::AutomaticIndexManager plain_aim(&plain_db, optimizer::CostModel(),
                                        plain_opts);
  Result<core::AimReport> plain = plain_aim.RunOnce(w, nullptr);
  ASSERT_TRUE(plain.ok());

  // Memoization is a pure optimization: identical recommendations from
  // strictly fewer optimizer calls, and a non-trivial hit rate.
  EXPECT_EQ(recommended_defs(cached.ValueOrDie()),
            recommended_defs(plain.ValueOrDie()));
  EXPECT_LT(cached.ValueOrDie().stats.what_if_calls,
            plain.ValueOrDie().stats.what_if_calls);
  EXPECT_GT(cached.ValueOrDie().stats.cache_hits, 0u);
  EXPECT_GT(cached.ValueOrDie().stats.cache_hit_rate(), 0.0);
  EXPECT_EQ(plain.ValueOrDie().stats.cache_hits, 0u);
}

}  // namespace
}  // namespace aim
