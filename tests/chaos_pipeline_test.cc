// Chaos harness for the no-regression guarantee: drive the full AIM
// pipeline (select → generate → merge → rank → validate → apply → GC)
// under hundreds of randomized, seeded fault schedules and assert the
// invariants that back production safety:
//   (a) no failure escapes as anything but a non-OK Status (and the
//       continuous tuner converts even those into degraded reports),
//   (b) after any failed interval the index configuration is exactly the
//       pre-call configuration (atomicity), and
//   (c) with faults disarmed the pipeline is deterministic — the chaos
//       machinery itself has zero effect when off.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/continuous.h"
#include "core/sharding.h"
#include "executor/metrics.h"
#include "support/stats_exporter.h"
#include "tests/test_util.h"
#include "workload/monitor.h"
#include "workload/replay.h"

namespace aim::core {
namespace {

using aim::testing::MakeUsersDb;

/// Catalog-shape signature: one entry per live index (real and
/// hypothetical), keyed by table + key parts + kind. Ids are excluded on
/// purpose: rollback may rebuild an index under a fresh id, which is
/// still the same configuration.
std::multiset<std::string> IndexSignature(const storage::Database& db) {
  std::multiset<std::string> sig;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(true, true)) {
    std::string key = std::to_string(idx->table);
    for (catalog::ColumnId c : idx->columns) {
      key += "," + std::to_string(c);
    }
    key += idx->hypothetical ? "|hypo" : "|real";
    sig.insert(std::move(key));
  }
  return sig;
}

/// Structural invariants that must hold after EVERY interval, failed or
/// not: no hypothetical index leaks into production, and every real
/// secondary index is fully materialized (a half-built B+Tree would be
/// silently wrong, not slow).
void ExpectWellFormed(const storage::Database& db, uint64_t seed) {
  EXPECT_EQ(db.catalog().AllIndexes(true, true).size(),
            db.catalog().AllIndexes(false, true).size())
      << "hypothetical index leaked into production, seed=" << seed;
  for (const catalog::IndexDef* idx :
       db.catalog().AllIndexes(false, false)) {
    EXPECT_NE(db.btree(idx->id), nullptr)
        << "unmaterialized real index " << db.catalog().DescribeIndex(*idx)
        << ", seed=" << seed;
  }
}

workload::Workload ChaosWorkload() {
  workload::Workload w;
  EXPECT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  return w;
}

ContinuousTunerOptions ChaosTunerOptions(
    const std::string& snapshot_path = "") {
  ContinuousTunerOptions options;
  options.drop_after_idle_intervals = 1;  // aggressive GC: exercise drops
  options.shrink_after_idle_intervals = 1;
  // Fast retries: schedules with fail_times <= 2 are recoverable.
  options.aim.validation.retry.max_attempts = 3;
  // Run the parallel what-if engine so fault schedules also cross the
  // pool's dispatch path (degraded dispatch must not change results).
  options.aim.num_threads = 2;
  // With a snapshot path the tuner also crosses the cache save/load
  // path, so schedules can kill `whatif.cache.load` too.
  options.cache_snapshot_path = snapshot_path;
  return options;
}

/// The fault points the pipeline actually crosses, with the layers they
/// live in.
const char* const kFaultPoints[] = {
    "storage.create_index", "storage.build_index_entry",
    "storage.drop_index",   "executor.execute",
    "shadow.clone",         "shadow.materialize",
    "core.apply",           "core.tick",
    "common.pool.dispatch", "workload.replay",
    "whatif.cache.load",
};

/// The additional points the *sharded* pipeline crosses: losing a shard
/// at validation entry or mid-clone-materialization.
const char* const kShardFaultPoints[] = {
    "shard.validate",       "shard.clone.materialize",
    "storage.create_index", "storage.build_index_entry",
    "executor.execute",     "common.pool.dispatch",
};

/// Arms a randomized subset of `points` from `rng` (always at least one)
/// and returns a human-readable description for failure messages.
template <size_t N>
std::string ArmRandomSchedule(Rng* rng, uint64_t seed,
                              const char* const (&points)[N]) {
  std::string description;
  bool armed_any = false;
  while (!armed_any) {
    for (const char* point : points) {
      if (!rng->Bernoulli(0.35)) continue;
      FaultSpec spec;
      spec.code = rng->Bernoulli(0.5) ? Status::Code::kUnavailable
                                      : Status::Code::kInternal;
      spec.probability = rng->Bernoulli(0.5)
                             ? 1.0
                             : 0.25 + 0.75 * rng->NextDouble();
      spec.skip = static_cast<int>(rng->Uniform(6));
      spec.fail_times =
          rng->Bernoulli(0.3) ? -1 : 1 + static_cast<int>(rng->Uniform(4));
      if (rng->Bernoulli(0.25)) spec.latency_ms = 5.0;
      FaultRegistry::Instance().Arm(point, spec, seed * 1000003 + 17);
      description += std::string(point) + "(" +
                     Status::FromCode(spec.code, "").ToString() + " skip=" +
                     std::to_string(spec.skip) + " fail=" +
                     std::to_string(spec.fail_times) + ") ";
      armed_any = true;
    }
  }
  return description;
}

TEST(ChaosPipelineTest, NoRegressionGuaranteeUnderRandomFaultSchedules) {
  const storage::Database base = MakeUsersDb(300, /*seed=*/7);
  const workload::Workload w = ChaosWorkload();
  constexpr int kSchedules = 220;
  constexpr int kTicksPerSchedule = 2;

  size_t degraded_intervals = 0;
  size_t clean_intervals = 0;
  size_t intervals_with_changes = 0;

  // One shared snapshot file across schedules: later seeds start from a
  // carried cache (valid — same base catalog), earlier seeds cold. A
  // faulted or truncated load must behave exactly like cold.
  const std::string snapshot_path =
      ::testing::TempDir() + "/chaos_whatif_cache.bin";
  std::remove(snapshot_path.c_str());

  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    Rng rng(seed);
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(),
                          ChaosTunerOptions(snapshot_path));
    const std::string schedule = ArmRandomSchedule(&rng, seed, kFaultPoints);

    for (int tick = 0; tick < kTicksPerSchedule; ++tick) {
      const std::multiset<std::string> before = IndexSignature(db);
      Result<IntervalReport> r = tuner.Tick(w, nullptr);
      // (a) Failures surface as Status, and the tuner degrades instead
      // of erroring: the interval result is always ok().
      ASSERT_TRUE(r.ok()) << "schedule: " << schedule
                          << " seed=" << seed << " tick=" << tick
                          << " status=" << r.status().ToString();
      const IntervalReport& report = r.ValueOrDie();
      if (report.degraded) {
        ++degraded_intervals;
        EXPECT_FALSE(report.error.ok()) << "seed=" << seed;
        // (b) A degraded interval leaves the configuration EXACTLY as it
        // was — no half-applied index set, ever.
        EXPECT_EQ(IndexSignature(db), before)
            << "degraded interval mutated production; schedule: "
            << schedule << " seed=" << seed << " tick=" << tick
            << " error=" << report.error.ToString();
      } else {
        ++clean_intervals;
        EXPECT_TRUE(report.error.ok());
        if (!report.aim.recommended.empty() || !report.dropped.empty() ||
            !report.shrunk.empty()) {
          ++intervals_with_changes;
        }
      }
      ExpectWellFormed(db, seed);
    }
    FaultRegistry::Instance().DisarmAll();
  }

  // The schedules must actually exercise both sides of the guarantee:
  // plenty of injected failures AND plenty of surviving intervals.
  EXPECT_GT(degraded_intervals, 50u);
  EXPECT_GT(clean_intervals, 50u);
  EXPECT_GT(intervals_with_changes, 10u);
}

TEST(ChaosPipelineTest, DisarmedPipelineIsDeterministic) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(300, /*seed=*/7);
  const workload::Workload w = ChaosWorkload();

  auto run = [&] {
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(),
                          ChaosTunerOptions());
    for (int tick = 0; tick < 3; ++tick) {
      Result<IntervalReport> r = tuner.Tick(w, nullptr);
      EXPECT_TRUE(r.ok());
      EXPECT_FALSE(r.ValueOrDie().degraded);
    }
    return IndexSignature(db);
  };

  const std::multiset<std::string> first = run();
  const std::multiset<std::string> second = run();
  EXPECT_EQ(first, second);
  // (c) The tuner converged on a non-trivial configuration — the
  // determinism check is not comparing two empty runs.
  EXPECT_GT(first.size(), 1u);
}

// A faulty pool scheduler may only slow the pipeline down, never change
// its output: with "common.pool.dispatch" armed at probability 1 every
// task degrades to inline execution, and the tuned configuration must be
// bit-identical to the fault-free parallel run.
TEST(ChaosPipelineTest, DispatchFaultsDegradeToInlineWithoutChangingResults) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(300, /*seed=*/7);
  const workload::Workload w = ChaosWorkload();

  auto run = [&] {
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(),
                          ChaosTunerOptions());
    for (int tick = 0; tick < 2; ++tick) {
      Result<IntervalReport> r = tuner.Tick(w, nullptr);
      EXPECT_TRUE(r.ok());
      EXPECT_FALSE(r.ValueOrDie().degraded);
    }
    return IndexSignature(db);
  };

  const std::multiset<std::string> healthy = run();

  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  spec.probability = 1.0;
  spec.fail_times = -1;  // every dispatch, forever
  FaultRegistry::Instance().Arm("common.pool.dispatch", spec, /*seed=*/1);
  const std::multiset<std::string> degraded = run();
  FaultRegistry::Instance().DisarmAll();

  EXPECT_EQ(healthy, degraded);
  EXPECT_GT(healthy.size(), 1u);
}

// Injected replay faults behave like failed executions: the driver sheds
// the load and keeps going, so the series stays full-length and the
// monitor only records the executions that actually completed.
TEST(ChaosPipelineTest, ReplayFaultsShedLoadWithoutAborting) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(300, /*seed=*/7);
  const workload::Workload w = ChaosWorkload();

  workload::ReplayDriver::Options opts;
  opts.offered_qps = 40.0;
  workload::ReplayDriver healthy_driver(&db, optimizer::CostModel(), opts);
  const std::vector<workload::ReplayTick> healthy =
      healthy_driver.Run(w, /*ticks=*/3);

  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  spec.probability = 1.0;
  spec.fail_times = -1;
  FaultRegistry::Instance().Arm("workload.replay", spec, /*seed=*/1);
  workload::ReplayDriver faulty_driver(&db, optimizer::CostModel(), opts);
  const std::vector<workload::ReplayTick> faulty =
      faulty_driver.Run(w, /*ticks=*/3);
  FaultRegistry::Instance().DisarmAll();

  ASSERT_EQ(healthy.size(), 3u);
  ASSERT_EQ(faulty.size(), 3u);
  double healthy_served = 0.0;
  double faulty_served = 0.0;
  for (const workload::ReplayTick& t : healthy) {
    healthy_served += t.throughput_qps;
  }
  for (const workload::ReplayTick& t : faulty) {
    faulty_served += t.throughput_qps;
  }
  EXPECT_GT(healthy_served, 0.0);
  EXPECT_EQ(faulty_served, 0.0);  // every execution failed, none crashed
  EXPECT_EQ(faulty_driver.monitor().Snapshot().size(), 0u);
}

// ---------------------------------------------------------------------------
// Sharded chaos: a shard lost mid-validation degrades the run — rejected
// candidates, untouched production — and never fails or splits the fleet.

std::vector<storage::Database> MakeChaosShards(int n) {
  std::vector<storage::Database> dbs;
  dbs.reserve(n);
  for (int i = 0; i < n; ++i) {
    dbs.push_back(MakeUsersDb(600, /*seed=*/50 + i));
  }
  return dbs;
}

ShardedOptions ChaosShardedOptions() {
  ShardedOptions options;
  options.comprehensive_validation = true;  // every shard validates
  options.aim.num_threads = 2;              // fan validations out
  return options;
}

Result<ShardedReport> RunShardedOnce(std::vector<storage::Database>* dbs) {
  ShardedIndexManager manager(ChaosShardedOptions());
  std::vector<Shard> shards;
  shards.reserve(dbs->size());
  for (storage::Database& db : *dbs) {
    shards.push_back(Shard{&db, nullptr});
  }
  return manager.RunOnce(ChaosWorkload(), shards, optimizer::CostModel());
}

/// Kills exactly one shard's validation at `point` and asserts the
/// degraded-not-failed contract: the run completes, every candidate is
/// rejected (conservative veto — the lost shard could have shown a
/// regression), and no shard's production catalog changes.
void ExpectOneLostShardDegrades(const char* point) {
  FaultRegistry::Instance().DisarmAll();
  std::vector<storage::Database> dbs = MakeChaosShards(3);
  std::vector<std::multiset<std::string>> before;
  for (const storage::Database& db : dbs) {
    before.push_back(IndexSignature(db));
  }

  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  spec.probability = 1.0;
  spec.fail_times = 1;  // exactly one crossing dies, the rest survive
  ScopedFault fault(point, spec);

  Result<ShardedReport> r = RunShardedOnce(&dbs);
  ASSERT_TRUE(r.ok()) << point << ": " << r.status().ToString();
  const ShardedReport& report = r.ValueOrDie();
  EXPECT_TRUE(report.degraded) << point;
  EXPECT_EQ(report.shards_lost, 1u) << point;
  size_t lost = 0;
  for (const ShardValidation& sv : report.validations) {
    if (!sv.error.ok()) ++lost;
  }
  EXPECT_EQ(lost, 1u) << point;
  // The workload has winning candidates (the healthy run applies them),
  // so "nothing applied" here demonstrates the veto, not an empty run.
  EXPECT_TRUE(report.aim.recommended.empty()) << point;
  EXPECT_FALSE(report.rejected_by_shards.empty()) << point;
  for (size_t i = 0; i < dbs.size(); ++i) {
    EXPECT_EQ(IndexSignature(dbs[i]), before[i])
        << point << ": lost shard mutated production on shard " << i;
  }
}

TEST(ShardedChaosTest, ShardLostAtValidationEntryDegradesNotFails) {
  ExpectOneLostShardDegrades("shard.validate");
}

TEST(ShardedChaosTest, ShardLostMidMaterializationDegradesNotFails) {
  ExpectOneLostShardDegrades("shard.clone.materialize");
}

TEST(ShardedChaosTest, ReplayDeathOnClonesRejectsWholesaleNotDegraded) {
  // Every replayed execution on every clone dies mid-replay. That is not
  // a lost shard — validation itself completed — but it proves nothing
  // about the candidates, so the whole set is rejected and production
  // stays untouched.
  FaultRegistry::Instance().DisarmAll();
  std::vector<storage::Database> dbs = MakeChaosShards(3);
  std::vector<std::multiset<std::string>> before;
  for (const storage::Database& db : dbs) {
    before.push_back(IndexSignature(db));
  }

  FaultSpec spec;
  spec.code = Status::Code::kUnavailable;
  spec.probability = 1.0;
  spec.fail_times = -1;
  ScopedFault fault("executor.execute", spec);

  Result<ShardedReport> r = RunShardedOnce(&dbs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ShardedReport& report = r.ValueOrDie();
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.shards_lost, 0u);
  EXPECT_TRUE(report.aim.recommended.empty());
  EXPECT_FALSE(report.rejected_by_shards.empty());
  for (const ShardValidation& sv : report.validations) {
    EXPECT_TRUE(sv.error.ok());
    EXPECT_FALSE(sv.result.replay_reliable);
  }
  for (size_t i = 0; i < dbs.size(); ++i) {
    EXPECT_EQ(IndexSignature(dbs[i]), before[i]) << "shard " << i;
  }
}

TEST(ShardedChaosTest, RandomShardFaultSchedulesNeverSplitTheFleet) {
  constexpr int kSchedules = 60;
  size_t degraded_runs = 0;
  size_t applied_runs = 0;

  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    Rng rng(seed);
    std::vector<storage::Database> dbs = MakeChaosShards(3);
    std::vector<std::multiset<std::string>> before;
    for (const storage::Database& db : dbs) {
      before.push_back(IndexSignature(db));
    }
    const std::string schedule =
        ArmRandomSchedule(&rng, seed, kShardFaultPoints);

    Result<ShardedReport> r = RunShardedOnce(&dbs);
    if (!r.ok()) {
      // A hard failure (e.g. apply died) must roll back every shard.
      for (size_t i = 0; i < dbs.size(); ++i) {
        EXPECT_EQ(IndexSignature(dbs[i]), before[i])
            << "failed run left changes on shard " << i
            << "; schedule: " << schedule << " seed=" << seed;
      }
    } else {
      const ShardedReport& report = r.ValueOrDie();
      if (report.degraded) {
        ++degraded_runs;
        // Lost shards veto everything: production untouched.
        EXPECT_TRUE(report.aim.recommended.empty())
            << "schedule: " << schedule << " seed=" << seed;
        for (size_t i = 0; i < dbs.size(); ++i) {
          EXPECT_EQ(IndexSignature(dbs[i]), before[i])
              << "degraded run mutated shard " << i << "; schedule: "
              << schedule << " seed=" << seed;
        }
      } else if (!report.aim.recommended.empty()) {
        ++applied_runs;
      }
      // The fleet never diverges: whatever happened, every shard ends
      // with the identical physical design.
      for (size_t i = 1; i < dbs.size(); ++i) {
        EXPECT_EQ(IndexSignature(dbs[i]), IndexSignature(dbs[0]))
            << "fleet split between shard 0 and shard " << i
            << "; schedule: " << schedule << " seed=" << seed;
      }
      for (const storage::Database& db : dbs) {
        ExpectWellFormed(db, seed);
      }
    }
    FaultRegistry::Instance().DisarmAll();
  }

  // The schedules must exercise both outcomes.
  EXPECT_GT(degraded_runs, 5u);
  EXPECT_GT(applied_runs, 5u);
}

// ---------------------------------------------------------------------------
// Stats export pipeline: at-least-once, never effectively-twice

/// A transport fault in the middle of an interval's publish loop (first
/// replica's message out, second replica's lost) must leave the exporter
/// re-exporting the *same* interval on retry. Delivery is at-least-once —
/// the raw subscriber log legitimately shows the first replica's message
/// twice — but messages carry (replica, interval), so a deduplicating
/// consumer folds each interval exactly once, and after the commit no
/// later export ever re-publishes it.
TEST(ChaosStatsExporterTest, MidPublishFaultNeverDoublePublishesInterval) {
  FaultRegistry::Instance().DisarmAll();
  workload::WorkloadMonitor replica_a;
  workload::WorkloadMonitor replica_b;
  support::StatsExporter exporter;
  exporter.RegisterReplica("replica-a", &replica_a);
  exporter.RegisterReplica("replica-b", &replica_b);

  std::vector<std::pair<std::string, int>> raw_log;
  // Consumer-side dedup by (replica, interval): folded executions per key.
  std::map<std::pair<std::string, int>, uint64_t> folded;
  exporter.Subscribe([&](const support::StatsMessage& msg) {
    raw_log.emplace_back(msg.replica, msg.interval);
    uint64_t executions = 0;
    for (const workload::QueryStats& s : msg.stats) {
      executions += s.executions;
    }
    folded[{msg.replica, msg.interval}] = executions;
  });

  executor::ExecutionMetrics m;
  m.rows_examined = 10;
  m.rows_sent = 2;
  m.cpu_seconds = 0.5;
  replica_a.RecordKeyed(0xA1, "SELECT 1", m);
  replica_a.RecordKeyed(0xA1, "SELECT 1", m);
  replica_b.RecordKeyed(0xB2, "SELECT 2", m);

  // Fault the transport mid-publish: the first message of interval 0 goes
  // out, the second hits the wire fault.
  {
    FaultSpec spec;
    spec.skip = 1;
    spec.fail_times = 1;
    ScopedFault fault("support.stats.export", spec);
    Result<size_t> r = exporter.ExportInterval();
    ASSERT_FALSE(r.ok());
    // Half-published: one replica's message delivered, then the export
    // aborted with nothing committed.
    ASSERT_EQ(raw_log.size(), 1u);
    EXPECT_EQ(raw_log[0].second, 0);
    EXPECT_EQ(exporter.intervals_exported(), 0);
  }

  // Retry re-exports interval 0 in full: the survivor's message is
  // delivered again with the SAME interval number (at-least-once), and
  // the monitors still held their deltas so nothing was lost.
  Result<size_t> retry = exporter.ExportInterval();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.ValueOrDie(), 2u);
  ASSERT_EQ(raw_log.size(), 3u);
  EXPECT_EQ(raw_log[1].second, 0);
  EXPECT_EQ(raw_log[2].second, 0);
  EXPECT_EQ(raw_log[0], raw_log[1]) << "retry must re-send the duplicate "
                                       "with an unchanged interval tag";
  EXPECT_EQ(exporter.intervals_exported(), 1);

  // Dedup folds exactly one record per (replica, interval), with the full
  // pre-fault executions — the duplicate overwrote, never accumulated.
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ((folded[{"replica-a", 0}]), 2u);
  EXPECT_EQ((folded[{"replica-b", 0}]), 1u);

  // After the commit the interval is sealed: new traffic exports as
  // interval 1, and interval 0 is never published again.
  replica_a.RecordKeyed(0xA1, "SELECT 1", m);
  Result<size_t> next = exporter.ExportInterval();
  ASSERT_TRUE(next.ok());
  for (size_t i = 3; i < raw_log.size(); ++i) {
    EXPECT_EQ(raw_log[i].second, 1);
  }
  EXPECT_EQ(exporter.intervals_exported(), 2);
  // The aggregate folded each interval exactly once despite the retry:
  // 3 executions of A1 total (2 in interval 0 + 1 in interval 1).
  const workload::QueryStats* agg = exporter.aggregate().Find(0xA1);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->executions, 3u);
}

// ---------------------------------------------------------------------------
// Workload drift under compression + incremental candidate generation.
// Mix shifts and schema evolution mid-run must invalidate exactly the
// affected clusters — and never move a selection away from what a cold
// full recompute would pick.

/// A workload where every template appears twice (so compression folds).
workload::Workload DuplicatedWorkload(
    const std::vector<std::string>& templates) {
  workload::Workload w;
  for (int rep = 0; rep < 2; ++rep) {
    for (const std::string& sql : templates) {
      EXPECT_TRUE(w.Add(sql, 1.0).ok()) << sql;
    }
  }
  return w;
}

TEST(CompressionDriftChaosTest, MixShiftInvalidatesOnlyAffectedClusters) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(1500, /*seed=*/7);
  ContinuousTunerOptions options;
  options.aim.compression.enabled = true;
  // Single-pass generation for exact per-cluster arithmetic (with
  // two-phase on, a mix shift can legitimately change the staged phase-1
  // configuration and so phase 2's whole context), and a zero storage
  // budget so no interval applies DDL — the configuration fingerprint
  // stays put and reuse depends on workload/statistics drift alone.
  options.aim.two_phase = false;
  options.aim.ranking.storage_budget_bytes = 0.0;

  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  const workload::Workload first = DuplicatedWorkload(
      {"SELECT id FROM users WHERE org_id = 3",
       "SELECT email FROM users WHERE status = 2",
       "SELECT id FROM users WHERE score > 500"});

  // Interval 1: cold — every cluster recomputes, once per template (the
  // duplicates folded away).
  Result<IntervalReport> r1 = tuner.Tick(first, nullptr);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1.ValueOrDie().degraded);
  EXPECT_EQ(r1.ValueOrDie().aim.stats.compression_clusters, 3u);
  EXPECT_EQ(r1.ValueOrDie().aim.stats.candgen_clusters_total, 3u);
  EXPECT_EQ(r1.ValueOrDie().aim.stats.candgen_clusters_reused, 0u);
  EXPECT_EQ(r1.ValueOrDie().aim.stats.candgen_clusters_recomputed, 3u);
  ASSERT_NE(tuner.candidate_cache(), nullptr);
  EXPECT_EQ(tuner.candidate_cache()->size(), 3u);

  // Interval 2, same mix: everything reuses.
  Result<IntervalReport> r2 = tuner.Tick(first, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().aim.stats.candgen_clusters_reused, 3u);
  EXPECT_EQ(r2.ValueOrDie().aim.stats.candgen_clusters_recomputed, 0u);

  // Interval 3, mix shift: one template leaves, two join. Exactly the
  // two new clusters recompute; the two carried ones are served.
  const workload::Workload shifted = DuplicatedWorkload(
      {"SELECT id FROM users WHERE org_id = 3",
       "SELECT email FROM users WHERE status = 2",
       "SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
       "SELECT org_id FROM users WHERE score < 50"});
  Result<IntervalReport> r3 = tuner.Tick(shifted, nullptr);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.ValueOrDie().aim.stats.candgen_clusters_total, 4u);
  EXPECT_EQ(r3.ValueOrDie().aim.stats.candgen_clusters_reused, 2u);
  EXPECT_EQ(r3.ValueOrDie().aim.stats.candgen_clusters_recomputed, 2u);

  // Interval 4, schema evolution (statistics rebuilt): every carried key
  // embeds the old schema/stats fingerprint — nothing reuses.
  db.AnalyzeAll(/*histogram_buckets=*/8);
  Result<IntervalReport> r4 = tuner.Tick(shifted, nullptr);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.ValueOrDie().aim.stats.candgen_clusters_reused, 0u);
  EXPECT_EQ(r4.ValueOrDie().aim.stats.candgen_clusters_recomputed, 4u);

  // Interval 5: statistics stable again — full reuse resumes.
  Result<IntervalReport> r5 = tuner.Tick(shifted, nullptr);
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5.ValueOrDie().aim.stats.candgen_clusters_reused, 4u);
  EXPECT_EQ(r5.ValueOrDie().aim.stats.candgen_clusters_recomputed, 0u);
}

TEST(CompressionDriftChaosTest, DriftedTicksMatchColdRecompute) {
  FaultRegistry::Instance().DisarmAll();
  // Twin databases, twin tick sequences: a warm tuner (compression on,
  // carried what-if + candidate caches) against a cold one (compression
  // off, nothing carried — the full recompute). Their production
  // configurations must agree after every interval, through a mix shift
  // and a statistics rebuild.
  storage::Database warm_db = MakeUsersDb(1500, /*seed=*/7);
  storage::Database cold_db = warm_db;

  ContinuousTunerOptions warm_options;
  warm_options.aim.num_threads = 2;
  warm_options.aim.compression.enabled = true;
  ContinuousTuner warm(&warm_db, optimizer::CostModel(), warm_options);

  ContinuousTunerOptions cold_options;
  cold_options.aim.num_threads = 2;
  cold_options.carry_what_if_cache = false;
  cold_options.carry_candidate_cache = false;
  ContinuousTuner cold(&cold_db, optimizer::CostModel(), cold_options);

  const workload::Workload first = DuplicatedWorkload(
      {"SELECT id FROM users WHERE org_id = 3",
       "SELECT email FROM users WHERE status = 2 AND score > 500",
       "UPDATE users SET score = 1 WHERE org_id = 3"});
  const workload::Workload shifted = DuplicatedWorkload(
      {"SELECT id FROM users WHERE org_id = 3",
       "SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
       "UPDATE users SET score = 1 WHERE org_id = 3"});

  const auto tick_both = [&](const workload::Workload& w,
                             const char* what) {
    Result<IntervalReport> rw = warm.Tick(w, nullptr);
    Result<IntervalReport> rc = cold.Tick(w, nullptr);
    ASSERT_TRUE(rw.ok()) << what << ": " << rw.status().ToString();
    ASSERT_TRUE(rc.ok()) << what << ": " << rc.status().ToString();
    EXPECT_FALSE(rw.ValueOrDie().degraded) << what;
    EXPECT_FALSE(rc.ValueOrDie().degraded) << what;
    EXPECT_EQ(IndexSignature(warm_db), IndexSignature(cold_db)) << what;
  };

  tick_both(first, "interval 1 (cold start)");
  tick_both(first, "interval 2 (steady state)");
  tick_both(shifted, "interval 3 (mix shift)");
  warm_db.AnalyzeAll(/*histogram_buckets=*/8);
  cold_db.AnalyzeAll(/*histogram_buckets=*/8);
  tick_both(shifted, "interval 4 (schema/statistics evolution)");
  tick_both(shifted, "interval 5 (stable again)");
}

}  // namespace
}  // namespace aim::core
