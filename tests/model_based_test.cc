// Model-based and metamorphic robustness tests:
//  * index maintenance: after random DML storms, every secondary index
//    must exactly mirror a brute-force recomputation from the heap;
//  * metamorphic executor property: query results must be independent of
//    which indexes exist (indexes change cost, never answers);
//  * parser robustness: random token soup never crashes, and everything
//    that parses round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "executor/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using sql::Value;

// ---------- index maintenance model ------------------------------------------

class DmlStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DmlStormTest, IndexesMirrorHeapAfterRandomOps) {
  Rng rng(GetParam());
  storage::Database db = MakeUsersDb(300, GetParam());
  catalog::IndexDef on_org;
  on_org.table = 0;
  on_org.columns = {1};
  catalog::IndexDef on_status_score;
  on_status_score.table = 0;
  on_status_score.columns = {2, 3};
  const catalog::IndexId idx1 = db.CreateIndex(on_org).ValueOrDie();
  const catalog::IndexId idx2 =
      db.CreateIndex(on_status_score).ValueOrDie();

  // Random DML storm.
  for (int op = 0; op < 400; ++op) {
    const double r = rng.NextDouble();
    if (r < 0.4) {
      storage::Row row(7);
      row[0] = Value::Int(static_cast<int64_t>(10000 + op));
      row[1] = Value::Int(static_cast<int64_t>(rng.Uniform(100)));
      row[2] = Value::Int(static_cast<int64_t>(rng.Uniform(5)));
      row[3] = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
      row[4] = Value::Int(static_cast<int64_t>(rng.Uniform(100000)));
      row[5] = Value::Str("u" + std::to_string(op));
      row[6] = Value::Str("p" + std::to_string(op));
      ASSERT_TRUE(db.InsertRow(0, std::move(row)).ok());
    } else if (r < 0.75) {
      // Update a random live row's indexed columns.
      const storage::RowId rid = rng.Uniform(db.heap(0).slot_count());
      if (!db.heap(0).IsLive(rid)) continue;
      storage::Row row = db.heap(0).row(rid);
      row[1] = Value::Int(static_cast<int64_t>(rng.Uniform(100)));
      row[3] = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
      ASSERT_TRUE(db.UpdateRow(0, rid, std::move(row)).ok());
    } else {
      const storage::RowId rid = rng.Uniform(db.heap(0).slot_count());
      if (!db.heap(0).IsLive(rid)) continue;
      ASSERT_TRUE(db.DeleteRow(0, rid).ok());
    }
  }

  // Brute-force model: recompute what each index must contain.
  auto verify = [&](catalog::IndexId id) {
    const catalog::IndexDef& def = *db.catalog().index(id);
    std::multiset<std::pair<std::string, storage::RowId>> expected;
    db.heap(0).Scan([&](storage::RowId rid, const storage::Row& row) {
      std::string key;
      for (catalog::ColumnId c : def.columns) {
        key += row[c].ToSqlLiteral() + "|";
      }
      expected.emplace(key, rid);
      return true;
    });
    std::multiset<std::pair<std::string, storage::RowId>> actual;
    db.btree(id)->ScanAll([&](const storage::Row& key,
                              storage::RowId rid) {
      std::string k;
      for (const Value& v : key) k += v.ToSqlLiteral() + "|";
      actual.emplace(k, rid);
      return true;
    });
    EXPECT_EQ(actual, expected) << "index "
                                << db.catalog().DescribeIndex(def);
  };
  verify(idx1);
  verify(idx2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmlStormTest,
                         ::testing::Range<uint64_t>(1, 11));

// ---------- metamorphic: results independent of indexes ----------------------

class IndexIndependenceTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomQuery(Rng* rng) {
  // Random single-table query mixing eq / IN / BETWEEN / OR / ORDER BY.
  std::string sql = "SELECT id, score FROM users WHERE ";
  const int shape = static_cast<int>(rng->Uniform(5));
  auto eq = [&](const char* col, uint64_t ndv) {
    return std::string(col) + " = " + std::to_string(rng->Uniform(ndv));
  };
  switch (shape) {
    case 0:
      sql += eq("org_id", 100);
      break;
    case 1:
      sql += eq("org_id", 100) + " AND " + eq("status", 5);
      break;
    case 2:
      sql += "status IN (1, 3) AND created_at BETWEEN " +
             std::to_string(rng->Uniform(1000)) + " AND " +
             std::to_string(1000 + rng->Uniform(2000));
      break;
    case 3:
      sql += "(" + eq("org_id", 100) + " AND " + eq("status", 5) +
             ") OR (created_at BETWEEN 50 AND 90)";
      break;
    default:
      // ORDER BY a unique key: ties at the LIMIT boundary would make
      // two different answers equally correct.
      sql += "score > " + std::to_string(rng->Uniform(500)) +
             " ORDER BY id LIMIT 40";
      break;
  }
  return sql;
}

TEST_P(IndexIndependenceTest, SameRowsWithAndWithoutIndexes) {
  Rng rng(GetParam());
  storage::Database bare = MakeUsersDb(1500, GetParam() + 100);
  storage::Database indexed = bare;
  // A random pile of indexes on the indexed copy.
  const std::vector<std::vector<catalog::ColumnId>> pool = {
      {1}, {2}, {4}, {1, 2}, {2, 4}, {3, 4}, {2, 3, 4}, {1, 4}};
  for (const auto& cols : pool) {
    if (rng.Bernoulli(0.6)) {
      catalog::IndexDef def;
      def.table = 0;
      def.columns = cols;
      (void)indexed.CreateIndex(def);
    }
  }

  executor::Executor bare_exec(&bare, optimizer::CostModel());
  executor::Executor indexed_exec(&indexed, optimizer::CostModel());
  for (int q = 0; q < 8; ++q) {
    const std::string sql = RandomQuery(&rng);
    sql::Statement stmt = aim::testing::MustParse(sql);
    Result<executor::ExecuteResult> a = bare_exec.Execute(stmt);
    Result<executor::ExecuteResult> b = indexed_exec.Execute(stmt);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    // Compare result multisets (ORDER BY ties make row order ambiguous).
    auto key_of = [](const storage::Row& row) {
      std::string k;
      for (const Value& v : row) k += v.ToSqlLiteral() + "|";
      return k;
    };
    std::multiset<std::string> rows_a;
    std::multiset<std::string> rows_b;
    for (const auto& row : a.ValueOrDie().rows) rows_a.insert(key_of(row));
    for (const auto& row : b.ValueOrDie().rows) rows_b.insert(key_of(row));
    EXPECT_EQ(rows_a, rows_b) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexIndependenceTest,
                         ::testing::Range<uint64_t>(1, 16));

// ---------- parser robustness -------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const std::vector<std::string> pool = {
      "SELECT", "FROM",  "WHERE", "AND",   "OR",    "NOT",   "IN",
      "BETWEEN", "IS",   "NULL",  "LIKE",  "ORDER", "GROUP", "BY",
      "LIMIT",  "users", "id",    "org_id", "=",    "<",     ">",
      "(",      ")",     ",",     "5",     "'x'",   "?",     "*",
      "COUNT",  ".",     "<=>",   "!=",    "1.5",   "JOIN",  "ON"};
  for (int trial = 0; trial < 60; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.Uniform(24));
    for (int t = 0; t < len; ++t) {
      sql += pool[rng.Uniform(pool.size())];
      sql += " ";
    }
    Result<sql::Statement> r = sql::Parse(sql);
    if (r.ok()) {
      // Anything accepted must round-trip through the printer.
      const std::string printed = sql::ToSql(r.ValueOrDie());
      Result<sql::Statement> again = sql::Parse(printed);
      ASSERT_TRUE(again.ok()) << "round-trip failed for: " << printed;
      EXPECT_EQ(printed, sql::ToSql(again.ValueOrDie()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace aim
