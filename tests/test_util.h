#ifndef AIM_TESTS_TEST_UTIL_H_
#define AIM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "executor/executor.h"
#include "sql/parser.h"
#include "storage/data_generator.h"
#include "storage/database.h"
#include "workload/demo.h"
#include "workload/workload.h"

namespace aim::testing {

/// Single-table fixture:
///   users(id PK, org_id, status, score, created_at, email, payload)
/// org_id ndv 100, status ndv 5, score ndv 1000 (zipf), created_at and
/// email quasi-unique.
inline storage::Database MakeUsersDb(uint64_t rows = 2000,
                                     uint64_t seed = 7) {
  return workload::MakeUsersDemoDb(rows, seed);
}

/// users + orders(id PK, user_id, status, total, day) for join tests.
inline storage::Database MakeOrdersDb(uint64_t users = 1000,
                                      uint64_t orders = 5000,
                                      uint64_t seed = 9) {
  return workload::MakeOrdersDemoDb(users, orders, seed);
}

/// Parses or records a test failure (for test setup).
inline sql::Statement MustParse(const std::string& text) {
  Result<sql::Statement> r = sql::Parse(text);
  if (!r.ok()) {
    ADD_FAILURE() << "parse failed: " << r.status().ToString()
                  << " sql=" << text;
    return sql::Statement{};
  }
  return r.MoveValue();
}

/// Makes a workload query or records a test failure.
inline workload::Query MustQuery(const std::string& text,
                                 double weight = 1.0) {
  Result<workload::Query> r = workload::MakeQuery(text, weight);
  if (!r.ok()) {
    ADD_FAILURE() << "MakeQuery failed: " << r.status().ToString()
                  << " sql=" << text;
    return workload::Query{};
  }
  return r.MoveValue();
}

/// Order-insensitive result fingerprint: the multiset of rows rendered
/// as SQL literals. Two configurations agree on a query iff their
/// fingerprints match — the oracle and differential suites' comparison
/// key.
inline std::multiset<std::string> RowFingerprints(
    const executor::ExecuteResult& result) {
  std::multiset<std::string> keys;
  for (const storage::Row& row : result.rows) {
    std::string k;
    for (const sql::Value& v : row) k += v.ToSqlLiteral() + "|";
    keys.insert(std::move(k));
  }
  return keys;
}

}  // namespace aim::testing

#endif  // AIM_TESTS_TEST_UTIL_H_
