// Compression-equivalence differential suite (`ctest -L compression`).
//
// Workload compression and incremental candidate generation are pure
// optimizations: tuning on weighted cluster representatives — or serving
// unchanged clusters from the carried candidate cache — must select
// exactly the indexes a full uncompressed recompute selects. These tests
// diff the *selected index set* (and the final catalog after RunOnce)
// between compressed and uncompressed runs across 1/2/8 threads with the
// WhatIfCache on and off, on the TPC-H templates and on seeded random
// storms salted with exact duplicates and permuted/duplicated IN lists.
//
// Benefits are compared as sets, not hexfloat scalars: the per-cluster
// frequency roll-up legitimately re-associates float sums (k terms of
// U₊·f versus one term of U₊·kf), which can drift the printed benefit by
// ulps without ever moving a knapsack decision.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/aim.h"
#include "core/candidate_cache.h"
#include "executor/executor.h"
#include "optimizer/what_if.h"
#include "sql/printer.h"
#include "tests/test_util.h"
#include "workload/compression.h"
#include "workload/monitor.h"
#include "workload/tpch.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

// ---------------------------------------------------------------------------
// Signatures

/// The recommended index set, order-independent.
std::string IndexSetSignature(const std::vector<core::CandidateIndex>& rec) {
  std::set<std::string> defs;
  for (const core::CandidateIndex& c : rec) {
    std::ostringstream d;
    d << "t" << c.def.table;
    for (catalog::ColumnId col : c.def.columns) d << "," << col;
    defs.insert(d.str());
  }
  std::ostringstream out;
  for (const std::string& d : defs) out << d << "\n";
  return out.str();
}

/// The final physical design, order-independent.
std::string CatalogIndexSet(const storage::Database& db) {
  std::set<std::string> defs;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, true)) {
    std::ostringstream d;
    d << "t" << idx->table;
    for (catalog::ColumnId col : idx->columns) d << "," << col;
    defs.insert(d.str());
  }
  std::ostringstream out;
  for (const std::string& d : defs) out << d << "\n";
  return out.str();
}

core::AimOptions BaseOptions(bool compress, int threads,
                             size_t cache_entries) {
  core::AimOptions o;
  o.num_threads = threads;
  o.what_if_cache_entries = cache_entries;
  o.compression.enabled = compress;
  // Admit everything hot enough to matter; a huge cap keeps both paths
  // away from the top-k boundary (cap semantics are covered separately).
  o.selection.min_executions = 1;
  o.selection.min_benefit_cores = 1e-9;
  o.selection.max_queries = 512;
  return o;
}

/// Recommend-only run (no apply): returns the selected index set.
std::string RecommendSet(const storage::Database& base,
                         const workload::Workload& w,
                         const workload::WorkloadMonitor* monitor,
                         bool compress, int threads, size_t cache_entries) {
  storage::Database db = base;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                  BaseOptions(compress, threads,
                                              cache_entries));
  Result<core::AimReport> r = aim.Recommend(w, monitor);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  return IndexSetSignature(r.ValueOrDie().recommended);
}

/// Full RunOnce (validate + apply): selected set plus the final catalog.
std::string RunOnceSet(const storage::Database& base,
                       const workload::Workload& w,
                       const workload::WorkloadMonitor* monitor,
                       bool compress, int threads, size_t cache_entries) {
  storage::Database db = base;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                  BaseOptions(compress, threads,
                                              cache_entries));
  Result<core::AimReport> r = aim.RunOnce(w, monitor);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  return IndexSetSignature(r.ValueOrDie().recommended) + "--\n" +
         CatalogIndexSet(db);
}

// ---------------------------------------------------------------------------
// TPC-H templates

TEST(CompressionEquivalenceTest, TpchBootstrapSelectionIdentical) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db;
  workload::TpchOptions topt;
  topt.materialized_sf = 0.005;
  ASSERT_TRUE(workload::BuildTpch(&db, topt).ok());
  Result<workload::Workload> w = workload::TpchQueries();
  ASSERT_TRUE(w.ok());

  const std::string reference =
      RecommendSet(db, w.ValueOrDie(), nullptr, /*compress=*/false, 1, 4096);
  ASSERT_FALSE(reference.empty()) << "TPC-H bootstrap recommended nothing";
  for (int threads : {1, 2, 8}) {
    for (size_t cache : {size_t{0}, size_t{4096}}) {
      EXPECT_EQ(reference, RecommendSet(db, w.ValueOrDie(), nullptr,
                                        /*compress=*/true, threads, cache))
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(CompressionEquivalenceTest, TpchMonitorDrivenSelectionIdentical) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db;
  workload::TpchOptions topt;
  topt.materialized_sf = 0.005;
  ASSERT_TRUE(workload::BuildTpch(&db, topt).ok());
  Result<workload::Workload> w = workload::TpchQueries();
  ASSERT_TRUE(w.ok());

  // Synthetic monitor statistics: every template hot and inefficient,
  // with per-template execution counts that vary enough to exercise the
  // benefit-rate ordering and the per-cluster frequency roll-up.
  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  for (size_t i = 0; i < w.ValueOrDie().queries.size(); ++i) {
    const workload::Query& q = w.ValueOrDie().queries[i];
    m.rows_examined = 2000 + 37 * i;
    m.rows_sent = 1 + i % 3;
    m.cpu_seconds = 0.01 + 0.003 * static_cast<double>(i % 7);
    const int executions = 5 + static_cast<int>(i) * 3;
    for (int rep = 0; rep < executions; ++rep) {
      monitor.RecordKeyed(q.fingerprint, q.normalized_sql, m);
    }
  }

  const std::string reference =
      RecommendSet(db, w.ValueOrDie(), &monitor, /*compress=*/false, 1, 4096);
  ASSERT_FALSE(reference.empty())
      << "monitor-driven TPC-H recommended nothing";
  for (int threads : {1, 2, 8}) {
    for (size_t cache : {size_t{0}, size_t{4096}}) {
      EXPECT_EQ(reference, RecommendSet(db, w.ValueOrDie(), &monitor,
                                        /*compress=*/true, threads, cache))
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded random storms: 3 seeds × 220 statements, salted with exact
// duplicates and permuted/duplicated IN-list variants (which the
// normalizer canonicalizes to byte-identical statements).

class CompressionStormTest : public ::testing::TestWithParam<uint64_t> {};

workload::Workload MakeStorm(Rng* rng, uint64_t rows, int statements) {
  auto lit = [&](uint64_t domain) {
    return std::to_string(rng->Uniform(domain));
  };
  auto column = [&](uint64_t* domain) -> std::string {
    static constexpr const char* kNames[] = {"id", "org_id", "status",
                                             "score", "created_at"};
    const uint64_t domains[] = {rows, 100, 5, 1000, rows};
    const size_t i = rng->Uniform(5);
    *domain = domains[i];
    return kNames[i];
  };
  auto predicate = [&]() -> std::string {
    uint64_t domain = 0;
    const std::string col = column(&domain);
    switch (rng->Uniform(5)) {
      case 0:
        return col + " = " + lit(domain);
      case 1:
        return col + " < " + lit(domain);
      case 2:
        return col + " > " + lit(domain);
      case 3: {
        const uint64_t lo = rng->Uniform(domain);
        return col + " BETWEEN " + std::to_string(lo) + " AND " +
               std::to_string(lo + 1 + rng->Uniform(domain / 4 + 1));
      }
      default: {
        std::string in = col + " IN (";
        const int n = 2 + static_cast<int>(rng->Uniform(3));
        for (int i = 0; i < n; ++i) {
          if (i > 0) in += ", ";
          in += lit(domain);
        }
        return in + ")";
      }
    }
  };
  auto fresh = [&]() -> std::string {
    if (rng->Bernoulli(0.08)) {
      return "UPDATE users SET score = " + lit(1000) + " WHERE org_id = " +
             lit(100);
    }
    static constexpr const char* kCols[] = {"id", "org_id", "status",
                                            "score", "created_at", "email"};
    std::string cols;
    const int n = 1 + static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < n; ++i) {
      if (i > 0) cols += ", ";
      cols += kCols[rng->Uniform(6)];
    }
    std::string sql = "SELECT " + cols + " FROM users WHERE " + predicate();
    const int extra = static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < extra; ++i) sql += " AND " + predicate();
    if (rng->Bernoulli(0.2)) {
      sql += std::string(" ORDER BY ") + kCols[rng->Uniform(6)];
    }
    return sql;
  };

  workload::Workload w;
  std::vector<std::string> history;
  // Distinct IN lists whose permuted/duplicated re-emissions below must
  // canonicalize into the same template cluster.
  const std::string in_base =
      "SELECT id FROM users WHERE org_id IN (4, 17, 52)";
  const std::string in_permuted =
      "SELECT id FROM users WHERE org_id IN (52, 4, 17)";
  const std::string in_duplicated =
      "SELECT id FROM users WHERE org_id IN (17, 52, 4, 17, 4)";
  while (static_cast<int>(w.size()) < statements) {
    std::string sql;
    const uint64_t pick = rng->Uniform(10);
    if (pick < 2 && !history.empty()) {
      // Exact duplicate of an earlier statement.
      sql = history[rng->Uniform(history.size())];
    } else if (pick == 2) {
      sql = in_base;
    } else if (pick == 3) {
      sql = rng->Bernoulli(0.5) ? in_permuted : in_duplicated;
    } else {
      sql = fresh();
      history.push_back(sql);
    }
    EXPECT_TRUE(w.Add(sql, 1.0).ok()) << sql;
  }
  return w;
}

TEST_P(CompressionStormTest, SelectedIndexSetIdentical) {
  FaultRegistry::Instance().DisarmAll();
  constexpr uint64_t kRows = 1200;
  Rng rng(GetParam());
  const workload::Workload w = MakeStorm(&rng, kRows, 220);
  storage::Database db = MakeUsersDb(kRows, /*seed=*/GetParam() + 41);

  // Real execution statistics: run every statement once on the heap
  // configuration. Entries sharing a template share the monitor record,
  // exactly as the production monitor keys by normalized fingerprint.
  workload::WorkloadMonitor monitor;
  executor::Executor exec(&db, optimizer::CostModel());
  for (const workload::Query& q : w.queries) {
    auto res = exec.Execute(q.stmt);
    ASSERT_TRUE(res.ok()) << q.sql << ": " << res.status().ToString();
    monitor.RecordKeyed(q.fingerprint, q.normalized_sql,
                        res.ValueOrDie().metrics);
  }

  const std::string reference =
      RunOnceSet(db, w, &monitor, /*compress=*/false, 1, 4096);
  ASSERT_NE(reference.find("t0"), std::string::npos)
      << "storm run recommended nothing:\n" << reference;
  for (int threads : {1, 2, 8}) {
    for (size_t cache : {size_t{0}, size_t{4096}}) {
      EXPECT_EQ(reference, RunOnceSet(db, w, &monitor, /*compress=*/true,
                                      threads, cache))
          << "threads=" << threads << " cache=" << cache;
    }
  }

  // The storm's duplicates and IN variants must actually compress.
  workload::CompressedWorkload c =
      workload::WorkloadCompressor().Compress(w, &monitor, &db.catalog());
  EXPECT_EQ(c.stats.statements_in, w.size());
  EXPECT_LT(c.stats.clusters, c.stats.entries_in);
  EXPECT_GT(c.stats.ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionStormTest,
                         ::testing::Values<uint64_t>(1, 2, 3));

// ---------------------------------------------------------------------------
// Compressor units: accounting, idempotence, clustering

TEST(WorkloadCompressorTest, MultiplicityAndWeightAccounting) {
  const storage::Database db = MakeUsersDb(200);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 2.0).ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 7", 3.0).ok());
  ASSERT_TRUE(w.Add("SELECT email FROM users WHERE status = 2", 1.5).ok());

  workload::CompressedWorkload c =
      workload::WorkloadCompressor().Compress(w, nullptr, &db.catalog());
  ASSERT_EQ(c.clusters.size(), 2u);
  ASSERT_EQ(c.workload.size(), 2u);
  EXPECT_EQ(c.stats.statements_in, 3u);
  EXPECT_EQ(c.stats.entries_in, 3u);
  EXPECT_DOUBLE_EQ(c.stats.ratio(), 1.5);
  // First occurrence represents the cluster.
  EXPECT_EQ(c.workload.queries[0].sql,
            "SELECT id FROM users WHERE org_id = 1");
  EXPECT_EQ(c.clusters[0].members, 2u);
  EXPECT_DOUBLE_EQ(c.workload.queries[0].weight, 5.0);
  EXPECT_EQ(c.workload.queries[0].multiplicity, 2u);
  EXPECT_EQ(c.clusters[1].members, 1u);
  EXPECT_DOUBLE_EQ(c.workload.queries[1].weight, 1.5);
}

TEST(WorkloadCompressorTest, ExecutionRollUpCountsEveryMemberEntry) {
  const storage::Database db = MakeUsersDb(200);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1").ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 9").ok());

  workload::WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  m.rows_examined = 100;
  m.cpu_seconds = 0.01;
  for (int i = 0; i < 6; ++i) {
    monitor.RecordKeyed(w.queries[0].fingerprint,
                        w.queries[0].normalized_sql, m);
  }

  workload::CompressedWorkload c =
      workload::WorkloadCompressor().Compress(w, &monitor, &db.catalog());
  ASSERT_EQ(c.clusters.size(), 1u);
  // Each of the two member entries contributes its template's 6 observed
  // executions — mirroring the uncompressed path, where both entries are
  // selected with the same per-template stats.
  EXPECT_EQ(c.clusters[0].executions, 12u);
}

TEST(WorkloadCompressorTest, CompressionIsIdempotent) {
  const storage::Database db = MakeUsersDb(200);
  Rng rng(5);
  const workload::Workload w = MakeStorm(&rng, 200, 120);

  const workload::WorkloadCompressor compressor;
  workload::CompressedWorkload once =
      compressor.Compress(w, nullptr, &db.catalog());
  workload::CompressedWorkload twice =
      compressor.Compress(once.workload, nullptr, &db.catalog());

  ASSERT_EQ(once.clusters.size(), twice.clusters.size());
  EXPECT_EQ(once.stats.statements_in, twice.stats.statements_in);
  for (size_t i = 0; i < once.clusters.size(); ++i) {
    EXPECT_EQ(once.clusters[i].fingerprint, twice.clusters[i].fingerprint);
    EXPECT_EQ(once.clusters[i].members, twice.clusters[i].members);
    EXPECT_EQ(once.clusters[i].executions, twice.clusters[i].executions);
    EXPECT_DOUBLE_EQ(once.workload.queries[i].weight,
                     twice.workload.queries[i].weight);
    EXPECT_EQ(once.workload.queries[i].sql, twice.workload.queries[i].sql);
  }
}

TEST(WorkloadCompressorTest, PermutedConjunctsMergeByStructuralSignature) {
  const storage::Database db = MakeUsersDb(200);
  const sql::Statement a =
      MustParse("SELECT id FROM users WHERE org_id = 1 AND status = 2");
  const sql::Statement b =
      MustParse("SELECT id FROM users WHERE status = 4 AND org_id = 5");
  EXPECT_EQ(workload::WorkloadCompressor::StructuralSignature(a,
                                                              db.catalog()),
            workload::WorkloadCompressor::StructuralSignature(b,
                                                              db.catalog()));

  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 1 AND status = 2").ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE status = 4 AND org_id = 5").ok());

  workload::WorkloadCompressionOptions merge_on;
  workload::CompressedWorkload merged =
      workload::WorkloadCompressor(merge_on).Compress(w, nullptr,
                                                      &db.catalog());
  ASSERT_EQ(merged.clusters.size(), 1u);
  EXPECT_EQ(merged.clusters[0].members, 2u);
  // Two distinct normalized templates folded into the one cluster.
  EXPECT_EQ(merged.clusters[0].template_fingerprints.size(), 2u);

  workload::WorkloadCompressionOptions merge_off;
  merge_off.merge_equivalent_templates = false;
  EXPECT_EQ(workload::WorkloadCompressor(merge_off)
                .Compress(w, nullptr, &db.catalog())
                .clusters.size(),
            2u);
}

TEST(WorkloadCompressorTest, DifferentShapesNeverMerge) {
  const storage::Database db = MakeUsersDb(200);
  const auto sig = [&](const std::string& sql) {
    return workload::WorkloadCompressor::StructuralSignature(MustParse(sql),
                                                             db.catalog());
  };
  const uint64_t base = sig("SELECT id FROM users WHERE org_id = 1");
  EXPECT_NE(base, sig("SELECT id FROM users WHERE org_id > 1"));
  EXPECT_NE(base, sig("SELECT id FROM users WHERE status = 1"));
  EXPECT_NE(base, sig("SELECT email FROM users WHERE org_id = 1"));
  EXPECT_NE(base,
            sig("SELECT id FROM users WHERE org_id = 1 ORDER BY score"));
  EXPECT_NE(base, sig("UPDATE users SET score = 2 WHERE org_id = 1"));
}

TEST(WorkloadCompressorTest, CanonicalizedInListsShareClusterAndCacheKey) {
  const storage::Database db = MakeUsersDb(200);
  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id IN (4, 17, 52)").ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id IN (52, 4, 17)").ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id IN (17, 52, 4, 17, 4)").ok());

  // The normalizer sorts and dedups literal-only IN lists at MakeQuery
  // time, so all three parse to the same canonical statement: same SQL
  // text, same literal-inclusive fingerprint (the candidate-cache cluster
  // key), one compression cluster.
  const std::string canonical = sql::ToSql(w.queries[0].stmt);
  EXPECT_EQ(canonical, sql::ToSql(w.queries[1].stmt));
  EXPECT_EQ(canonical, sql::ToSql(w.queries[2].stmt));
  EXPECT_EQ(core::CandidateCache::ClusterKey(w.queries[0].stmt, 0),
            core::CandidateCache::ClusterKey(w.queries[1].stmt, 0));
  EXPECT_EQ(core::CandidateCache::ClusterKey(w.queries[0].stmt, 0),
            core::CandidateCache::ClusterKey(w.queries[2].stmt, 0));

  workload::CompressedWorkload c =
      workload::WorkloadCompressor().Compress(w, nullptr, &db.catalog());
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].members, 3u);
}

// ---------------------------------------------------------------------------
// Incremental candidate generation: exact reuse, exact invalidation

core::AimReport MustRecommend(core::AutomaticIndexManager* aim,
                              const workload::Workload& w) {
  Result<core::AimReport> r = aim->Recommend(w, nullptr);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : core::AimReport{};
}

TEST(IncrementalCandgenTest, SecondRunServedEntirelyFromCache) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(1500);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 40.0).ok());
  ASSERT_TRUE(w.Add("SELECT email FROM users WHERE status = 2 AND "
                    "score > 500",
                    20.0)
                  .ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40", 10.0)
          .ok());

  core::CandidateCache cache(1024);
  core::AimOptions o = BaseOptions(/*compress=*/true, /*threads=*/2, 4096);
  o.candidate_cache = &cache;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), o);

  const core::AimReport first = MustRecommend(&aim, w);
  ASSERT_GT(first.stats.candgen_clusters_total, 0u);
  EXPECT_EQ(first.stats.candgen_clusters_reused, 0u);
  EXPECT_EQ(first.stats.candgen_clusters_recomputed,
            first.stats.candgen_clusters_total);

  // Nothing changed: every cluster of both generation passes is a hit,
  // and the recommendation is bit-for-bit the first one.
  const core::AimReport second = MustRecommend(&aim, w);
  EXPECT_EQ(second.stats.candgen_clusters_total,
            first.stats.candgen_clusters_total);
  EXPECT_EQ(second.stats.candgen_clusters_reused,
            second.stats.candgen_clusters_total);
  EXPECT_EQ(second.stats.candgen_clusters_recomputed, 0u);
  EXPECT_DOUBLE_EQ(second.stats.candgen_reuse_rate(), 1.0);
  EXPECT_EQ(IndexSetSignature(first.recommended),
            IndexSetSignature(second.recommended));
}

TEST(IncrementalCandgenTest, OnlyDriftedClustersRecompute) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(1500);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 40.0).ok());
  ASSERT_TRUE(w.Add("SELECT email FROM users WHERE status = 2", 20.0).ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE score > 500", 10.0).ok());

  core::CandidateCache cache(1024);
  // Single-pass generation: with two-phase on, a workload change can
  // legitimately alter the staged phase-1 configuration and so the phase-2
  // context fingerprint — correct (phase 2's input changed) but noisy for
  // exact per-cluster counting. One pass makes the arithmetic exact.
  core::AimOptions o = BaseOptions(/*compress=*/true, /*threads=*/1, 4096);
  o.candidate_cache = &cache;
  o.two_phase = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), o);

  const core::AimReport first = MustRecommend(&aim, w);
  EXPECT_EQ(first.stats.candgen_clusters_total, 3u);
  EXPECT_EQ(first.stats.candgen_clusters_recomputed, 3u);

  // Mix shift: one new template joins, the three old ones stay.
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 1 AND 9", 5.0)
          .ok());
  const core::AimReport drifted = MustRecommend(&aim, w);
  EXPECT_EQ(drifted.stats.candgen_clusters_total, 4u);
  EXPECT_EQ(drifted.stats.candgen_clusters_reused, 3u);
  EXPECT_EQ(drifted.stats.candgen_clusters_recomputed, 1u);

  // Statistics drift: every carried key embeds the old schema/stats
  // fingerprint, so the whole interval recomputes.
  db.AnalyzeAll(/*histogram_buckets=*/8);
  const core::AimReport refreshed = MustRecommend(&aim, w);
  EXPECT_EQ(refreshed.stats.candgen_clusters_total, 4u);
  EXPECT_EQ(refreshed.stats.candgen_clusters_reused, 0u);
  EXPECT_EQ(refreshed.stats.candgen_clusters_recomputed, 4u);

  // And reuse resumes once the statistics are stable again — with the
  // same selection a cold cache would produce.
  const core::AimReport resumed = MustRecommend(&aim, w);
  EXPECT_EQ(resumed.stats.candgen_clusters_reused, 4u);
  core::AimOptions cold = o;
  cold.candidate_cache = nullptr;
  core::AutomaticIndexManager cold_aim(&db, optimizer::CostModel(), cold);
  EXPECT_EQ(IndexSetSignature(MustRecommend(&cold_aim, w).recommended),
            IndexSetSignature(resumed.recommended));
}

TEST(IncrementalCandgenTest, CacheBoundedLruEvicts) {
  core::CandidateCache cache(2);
  std::vector<core::PartialOrder> empty;
  cache.Insert(1, 0, empty);
  cache.Insert(2, 0, empty);
  cache.Insert(3, 0, empty);  // evicts key 1
  std::vector<core::PartialOrder> out;
  EXPECT_FALSE(cache.Lookup(1, 0, &out));
  EXPECT_TRUE(cache.Lookup(2, 0, &out));
  EXPECT_TRUE(cache.Lookup(3, 0, &out));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Same cluster, different context (e.g. new configuration): distinct key.
  cache.Insert(3, 9, empty);
  EXPECT_FALSE(cache.Lookup(3, 8, &out));
  EXPECT_TRUE(cache.Lookup(3, 9, &out));
}

}  // namespace
}  // namespace aim
