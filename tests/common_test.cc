#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace aim {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<Status::Code> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfBudget("x").code(),
      Status::ParseError("x").code(),      Status::Unsupported("x").code(),
      Status::Internal("x").code(),        Status::Unavailable("x").code(),
  };
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, CodeNamesInToString) {
  EXPECT_EQ(Status::Unavailable("shadow gone").ToString(),
            "Unavailable: shadow gone");
  EXPECT_EQ(Status::Unsupported("no").ToString(), "Unsupported: no");
  EXPECT_EQ(Status::OutOfBudget("cap").ToString(), "OutOfBudget: cap");
}

TEST(StatusTest, OnlyUnavailableIsRetriable) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetriable());
  EXPECT_FALSE(Status::OK().IsRetriable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetriable());
  EXPECT_FALSE(Status::NotFound("x").IsRetriable());
  EXPECT_FALSE(Status::Internal("x").IsRetriable());
}

TEST(StatusTest, FromCodeMatchesFactory) {
  Status s = Status::FromCode(Status::Code::kUnavailable, "later");
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(s.message(), "later");
  EXPECT_TRUE(s.IsRetriable());
}

Status Fails() { return Status::NotFound("nope"); }
Status PropagatesThroughMacro() {
  AIM_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatesThroughMacro().code(), Status::Code::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
}

Result<int> GiveSeven() { return 7; }
Result<int> UseAssignOrReturn() {
  AIM_ASSIGN_OR_RETURN(int v, GiveSeven());
  return v + 1;
}
Result<int> FailAssign() {
  AIM_ASSIGN_OR_RETURN(int v, Result<int>(Status::NotFound("gone")));
  return v;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  Result<int> r = UseAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = FailAssign();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r = std::string("payload");
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, HoldsMoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.MoveValue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

Result<std::unique_ptr<int>> MakeBox(bool fail) {
  if (fail) return Status::Unavailable("box machine busy");
  return std::make_unique<int>(9);
}
Result<int> UnwrapBox(bool fail) {
  AIM_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(fail));
  return *box;
}

TEST(ResultTest, AssignOrReturnMovesMoveOnlyPayload) {
  Result<int> ok = UnwrapBox(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 9);
  Result<int> err = UnwrapBox(true);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(err.status().message(), "box machine busy");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformZeroBoundIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.Zipf(100, 0.9), 100u);
  }
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(10);
  uint64_t small = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 0.99) < 10) ++small;
  }
  // With heavy skew, the top-10 values should dominate far beyond the
  // uniform expectation of 1%.
  EXPECT_GT(small, static_cast<uint64_t>(kTrials * 0.2));
}

TEST(RngTest, ZipfZeroThetaActsUniform) {
  Rng rng(11);
  uint64_t small = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Zipf(1000, 0.0) < 10) ++small;
  }
  EXPECT_LT(small, 200u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(13);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, Split) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("LineItem", "LINEITEM"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MiB");
  EXPECT_EQ(HumanBytes(1.0 * 1024 * 1024 * 1024), "1.00 GiB");
}

TEST(LoggingTest, LevelGate) {
  LogLevel prev = Logger::SetLevel(LogLevel::kError);
  AIM_LOG(Info) << "should be suppressed";
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
  Logger::SetLevel(prev);
}

}  // namespace
}  // namespace aim
