#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/retry.h"
#include "storage/index_transaction.h"
#include "tests/test_util.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;

/// Disarms everything before and after each test so no schedule leaks
/// across tests (the registry is process-wide).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

Status GuardedOp() {
  AIM_FAULT_POINT("test.op");
  return Status::OK();
}

Result<int> GuardedValueOp() {
  AIM_FAULT_POINT("test.value_op");
  return 11;
}

TEST_F(FaultInjectionTest, DisarmedPointIsTransparent) {
  EXPECT_FALSE(FaultRegistry::ArmedGlobally());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(FaultRegistry::Instance().stats("test.op").hits, 0u);
}

TEST_F(FaultInjectionTest, ArmedPointInjectsConfiguredStatus) {
  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  spec.message = "boom";
  ScopedFault fault("test.op", spec);
  EXPECT_TRUE(FaultRegistry::ArmedGlobally());
  Status st = GuardedOp();
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_EQ(st.message(), "boom");
  EXPECT_EQ(FaultRegistry::Instance().stats("test.op").triggers, 1u);
}

TEST_F(FaultInjectionTest, WorksInResultReturningFunctions) {
  ScopedFault fault("test.value_op", FaultSpec{});
  Result<int> r = GuardedValueOp();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
}

TEST_F(FaultInjectionTest, ArmingOnePointLeavesOthersAlone) {
  ScopedFault fault("test.value_op", FaultSpec{});
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_FALSE(GuardedValueOp().ok());
}

TEST_F(FaultInjectionTest, SkipThenFailSchedule) {
  FaultSpec spec;
  spec.skip = 2;
  spec.fail_times = 3;
  ScopedFault fault("test.op", spec);
  std::vector<bool> outcomes;
  for (int i = 0; i < 8; ++i) outcomes.push_back(GuardedOp().ok());
  EXPECT_EQ(outcomes, (std::vector<bool>{true, true, false, false, false,
                                         true, true, true}));
  FaultStats stats = FaultRegistry::Instance().stats("test.op");
  EXPECT_EQ(stats.hits, 8u);
  EXPECT_EQ(stats.triggers, 3u);
}

TEST_F(FaultInjectionTest, ProbabilisticTriggeringIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultRegistry::Instance().DisarmAll();
    FaultSpec spec;
    spec.probability = 0.5;
    FaultRegistry::Instance().Arm("test.op", spec, seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) outcomes.push_back(GuardedOp().ok());
    return outcomes;
  };
  std::vector<bool> a = run(123);
  std::vector<bool> b = run(123);
  std::vector<bool> c = run(321);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Both failures and successes occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultInjectionTest, LatencyIsVirtual) {
  FaultSpec spec;
  spec.latency_ms = 25.0;
  spec.skip = 1000;  // never actually fails in this test
  ScopedFault fault("test.op", spec);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(GuardedOp().ok());
  EXPECT_DOUBLE_EQ(
      FaultRegistry::Instance().stats("test.op").injected_latency_ms,
      100.0);
  EXPECT_DOUBLE_EQ(FaultRegistry::Instance().total_injected_latency_ms(),
                   100.0);
}

TEST_F(FaultInjectionTest, SuppressionMakesCheckTransparent) {
  ScopedFault fault("test.op", FaultSpec{});
  EXPECT_FALSE(GuardedOp().ok());
  {
    FaultRegistry::ScopedFaultSuppression suppress;
    EXPECT_TRUE(GuardedOp().ok());
  }
  EXPECT_FALSE(GuardedOp().ok());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault("test.op", FaultSpec{});
    EXPECT_EQ(FaultRegistry::Instance().ArmedPoints().size(), 1u);
  }
  EXPECT_TRUE(FaultRegistry::Instance().ArmedPoints().empty());
  EXPECT_FALSE(FaultRegistry::ArmedGlobally());
  EXPECT_TRUE(GuardedOp().ok());
}

// ---------------------------------------------------------------------------
// RetryPolicy

TEST_F(FaultInjectionTest, RetryRecoversFromTransientFailures) {
  FaultSpec spec;
  spec.fail_times = 2;  // kUnavailable twice, then fine
  ScopedFault fault("test.op", spec);
  RetryPolicy retry;
  Status st = retry.Run([] { return GuardedOp(); });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(retry.attempts(), 3);
  EXPECT_GT(retry.total_backoff_ms(), 0.0);
}

TEST_F(FaultInjectionTest, RetryGivesUpAfterMaxAttempts) {
  ScopedFault fault("test.op", FaultSpec{});  // fails forever
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy retry(options);
  Status st = retry.Run([] { return GuardedOp(); });
  EXPECT_EQ(st.code(), Status::Code::kUnavailable);
  EXPECT_EQ(retry.attempts(), 3);
}

TEST_F(FaultInjectionTest, RetryDoesNotRetryHardFailures) {
  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  ScopedFault fault("test.op", spec);
  RetryPolicy retry;
  Status st = retry.Run([] { return GuardedOp(); });
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_EQ(retry.attempts(), 1);
  EXPECT_DOUBLE_EQ(retry.total_backoff_ms(), 0.0);
}

TEST_F(FaultInjectionTest, RetryWorksWithResultValues) {
  FaultSpec spec;
  spec.fail_times = 1;
  ScopedFault fault("test.value_op", spec);
  RetryPolicy retry;
  Result<int> r = retry.Run([] { return GuardedValueOp(); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 11);
  EXPECT_EQ(retry.attempts(), 2);
}

TEST(RetryPolicyTest, BackoffIsExponentialCappedAndSeedDeterministic) {
  RetryOptions options;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 50.0;
  options.jitter_fraction = 0.2;
  options.seed = 99;
  RetryPolicy a(options);
  RetryPolicy b(options);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double base =
        std::min(10.0 * std::pow(2.0, attempt - 1), 50.0);
    const double ms = a.NextBackoffMs(attempt);
    EXPECT_GE(ms, base * 0.8) << "attempt " << attempt;
    EXPECT_LE(ms, base * 1.2) << "attempt " << attempt;
    // Same options + seed => identical jittered sequence.
    EXPECT_DOUBLE_EQ(ms, b.NextBackoffMs(attempt));
  }
}

TEST(RetryPolicyTest, SleepHookObservesVirtualClock) {
  RetryOptions options;
  options.max_attempts = 4;
  RetryPolicy retry(options);
  double slept = 0.0;
  retry.set_sleep_fn([&](double ms) { slept += ms; });
  int calls = 0;
  Status st = retry.Run([&] {
    ++calls;
    return Status::Unavailable("still warming up");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_DOUBLE_EQ(slept, retry.total_backoff_ms());
  EXPECT_GT(slept, 0.0);
}

// ---------------------------------------------------------------------------
// IndexSetTransaction

std::multiset<std::string> IndexSignature(const storage::Database& db) {
  std::multiset<std::string> sig;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(true, true)) {
    std::string key = std::to_string(idx->table);
    for (catalog::ColumnId c : idx->columns) {
      key += "," + std::to_string(c);
    }
    key += idx->hypothetical ? "|hypo" : "|real";
    sig.insert(std::move(key));
  }
  return sig;
}

TEST_F(FaultInjectionTest, TransactionCommitKeepsIndexes) {
  storage::Database db = MakeUsersDb(200);
  storage::IndexSetTransaction txn(&db);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(txn.CreateIndex(def).ok());
  txn.Commit();
  EXPECT_NE(db.catalog().FindIndex(0, {1}), nullptr);
}

TEST_F(FaultInjectionTest, TransactionRollbackDropsCreatedIndexes) {
  storage::Database db = MakeUsersDb(200);
  const std::multiset<std::string> before = IndexSignature(db);
  {
    storage::IndexSetTransaction txn(&db);
    catalog::IndexDef def;
    def.table = 0;
    def.columns = {1};
    ASSERT_TRUE(txn.CreateIndex(def).ok());
    // No commit: destructor rolls back.
  }
  EXPECT_EQ(IndexSignature(db), before);
}

TEST_F(FaultInjectionTest, TransactionRollbackRebuildsDroppedIndexes) {
  storage::Database db = MakeUsersDb(200);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2, 3};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  const std::multiset<std::string> before = IndexSignature(db);
  {
    storage::IndexSetTransaction txn(&db);
    const catalog::IndexDef* idx = db.catalog().FindIndex(0, {2, 3});
    ASSERT_NE(idx, nullptr);
    ASSERT_TRUE(txn.DropIndex(idx->id).ok());
    EXPECT_EQ(db.catalog().FindIndex(0, {2, 3}), nullptr);
  }
  EXPECT_EQ(IndexSignature(db), before);
  // The rebuilt index is materialized, not just catalog metadata.
  const catalog::IndexDef* rebuilt = db.catalog().FindIndex(0, {2, 3});
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(db.btree(rebuilt->id), nullptr);
}

// The acceptance-criteria schedule: for n index builds, fail the k-th one
// for every k and prove the catalog always rolls back to exactly the
// original set.
TEST_F(FaultInjectionTest, RollbackIsExactForEveryFailurePosition) {
  const std::vector<std::vector<catalog::ColumnId>> column_sets = {
      {1}, {2}, {3}, {1, 2}, {2, 3}};
  const size_t n = column_sets.size();
  for (size_t k = 1; k <= n; ++k) {
    storage::Database db = MakeUsersDb(200);
    const std::multiset<std::string> before = IndexSignature(db);

    FaultSpec spec;
    spec.code = Status::Code::kInternal;  // hard failure: no retry rescue
    spec.skip = static_cast<int>(k) - 1;
    spec.fail_times = 1;
    ScopedFault fault("storage.create_index", spec);

    storage::IndexSetTransaction txn(&db);
    Status failure;
    for (const auto& columns : column_sets) {
      catalog::IndexDef def;
      def.table = 0;
      def.columns = columns;
      Result<catalog::IndexId> id = txn.CreateIndex(def);
      if (!id.ok()) {
        failure = id.status();
        break;
      }
    }
    ASSERT_FALSE(failure.ok()) << "k=" << k;
    EXPECT_EQ(txn.pending_ops(), k - 1) << "k=" << k;
    Status rollback = txn.Rollback();
    EXPECT_TRUE(rollback.ok()) << "k=" << k << ": " << rollback.ToString();
    EXPECT_EQ(IndexSignature(db), before) << "k=" << k;
  }
}

// Same schedule but failing during materialization (mid-scan): CreateIndex
// itself must clean up its partial B+Tree and catalog entry.
TEST_F(FaultInjectionTest, PartialMaterializationIsRolledBack) {
  storage::Database db = MakeUsersDb(200);
  const std::multiset<std::string> before = IndexSignature(db);
  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  spec.skip = 50;  // fail after 50 rows of the build scan
  spec.fail_times = 1;
  ScopedFault fault("storage.build_index_entry", spec);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  Result<catalog::IndexId> id = db.CreateIndex(def);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(IndexSignature(db), before);
  EXPECT_EQ(db.catalog().FindIndex(0, {1}), nullptr);
}

TEST_F(FaultInjectionTest, TransactionRollbackSurvivesArmedFaults) {
  storage::Database db = MakeUsersDb(200);
  catalog::IndexDef existing;
  existing.table = 0;
  existing.columns = {4};
  ASSERT_TRUE(db.CreateIndex(existing).ok());
  const std::multiset<std::string> before = IndexSignature(db);

  // Fail the second create; the still-armed fault must not be able to
  // fail the rollback's recovery work (suppression).
  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  spec.skip = 1;
  ScopedFault fault("storage.create_index", spec);

  storage::IndexSetTransaction txn(&db);
  const catalog::IndexDef* idx = db.catalog().FindIndex(0, {4});
  ASSERT_NE(idx, nullptr);
  ASSERT_TRUE(txn.DropIndex(idx->id).ok());
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(txn.CreateIndex(def).ok());  // consumes the skip
  def.columns = {2};
  ASSERT_FALSE(txn.CreateIndex(def).ok());  // injected failure
  EXPECT_TRUE(txn.Rollback().ok());
  EXPECT_EQ(IndexSignature(db), before);
}

}  // namespace
}  // namespace aim
