#include <gtest/gtest.h>

#include "advisors/relaxation.h"
#include "tests/test_util.h"

namespace aim::advisors {
namespace {

using aim::testing::MakeUsersDb;

TEST(RelaxationMergeTest, CombinesKeyOrders) {
  catalog::IndexDef a;
  a.table = 0;
  a.columns = {1, 2};
  catalog::IndexDef b;
  b.table = 0;
  b.columns = {2, 3};
  catalog::IndexDef merged = RelaxationAdvisor::MergeIndexes(a, b, 8);
  EXPECT_EQ(merged.columns, (std::vector<catalog::ColumnId>{1, 2, 3}));
}

TEST(RelaxationMergeTest, TruncatesToWidth) {
  catalog::IndexDef a;
  a.table = 0;
  a.columns = {1, 2, 3};
  catalog::IndexDef b;
  b.table = 0;
  b.columns = {4, 5};
  catalog::IndexDef merged = RelaxationAdvisor::MergeIndexes(a, b, 4);
  EXPECT_EQ(merged.columns.size(), 4u);
  EXPECT_EQ(merged.columns[0], 1u);
}

TEST(RelaxationTest, FitsBudgetAndReducesCost) {
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE status = 2 AND score > 500", 5.0)
          .ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  const double base = WorkloadCost(w, &what_if).ValueOrDie();

  RelaxationAdvisor advisor;
  AdvisorOptions options;
  options.max_index_width = 3;
  options.storage_budget_bytes = 400000;
  Result<AdvisorResult> r = advisor.Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().indexes.empty());
  EXPECT_LE(r.ValueOrDie().total_size_bytes,
            options.storage_budget_bytes);
  EXPECT_LT(r.ValueOrDie().final_workload_cost, base);
}

TEST(RelaxationTest, TinyBudgetRelaxesToNothingUseful) {
  storage::Database db = MakeUsersDb(2000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  RelaxationAdvisor advisor;
  AdvisorOptions options;
  options.storage_budget_bytes = 10.0;
  Result<AdvisorResult> r = advisor.Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().indexes.empty());
}

TEST(RelaxationTest, MergePreservesBothQueriesUnderPressure) {
  // Two queries on overlapping columns; a tight budget forces the
  // relaxation to merge rather than drop.
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 5 AND status = 1", 10.0)
          .ok());
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 7", 10.0).ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());

  // Budget fits roughly one two-column index.
  catalog::IndexDef two_col;
  two_col.table = 0;
  two_col.columns = {1, 2};
  const double budget = db.catalog().IndexSizeBytes(two_col) * 1.3;
  RelaxationAdvisor advisor;
  AdvisorOptions options;
  options.storage_budget_bytes = budget;
  options.max_index_width = 3;
  Result<AdvisorResult> r = advisor.Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.ValueOrDie().indexes.empty());
  // Whatever survived must still serve the org_id prefix for both.
  bool org_prefix = false;
  for (const auto& def : r.ValueOrDie().indexes) {
    if (!def.columns.empty() && def.columns[0] == 1) org_prefix = true;
  }
  EXPECT_TRUE(org_prefix);
}

TEST(RelaxationTest, MoreWhatIfCallsThanAim) {
  // Sec. IX: Relaxation's top-down pruning is expensive in optimizer
  // calls compared to AIM's structural generation.
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE status = 2 AND score > 500", 5.0)
          .ok());
  ASSERT_TRUE(
      w.Add("SELECT email FROM users WHERE created_at = 9", 5.0).ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 2 AND created_at > 100",
            5.0)
          .ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE score = 7 AND status = 1", 5.0)
          .ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  RelaxationAdvisor relaxation;
  AdvisorOptions options;
  // Tight budget: the ideal configuration must be relaxed repeatedly.
  catalog::IndexDef one;
  one.table = 0;
  one.columns = {1};
  options.storage_budget_bytes = db.catalog().IndexSizeBytes(one) * 2.5;
  Result<AdvisorResult> r = relaxation.Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok());
  // AIM solves this workload in a handful of calls (see AimTest); the
  // relaxation search is at least several times hungrier.
  EXPECT_GT(r.ValueOrDie().what_if_calls, 50u);
}

}  // namespace
}  // namespace aim::advisors
