#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/merge.h"
#include "core/partial_order.h"

namespace aim::core {
namespace {

PartialOrder PO(std::vector<std::vector<catalog::ColumnId>> partitions,
                catalog::TableId table = 0) {
  return PartialOrder::FromPartitions(table, std::move(partitions));
}

TEST(PartialOrderTest, BasicAccessors) {
  PartialOrder po = PO({{1, 2}, {3}});
  EXPECT_EQ(po.width(), 3u);
  EXPECT_TRUE(po.Contains(1));
  EXPECT_TRUE(po.Contains(3));
  EXPECT_FALSE(po.Contains(9));
  EXPECT_EQ(po.Columns(), (std::vector<catalog::ColumnId>{1, 2, 3}));
}

TEST(PartialOrderTest, PrecedesAcrossPartitionsOnly) {
  PartialOrder po = PO({{1, 2}, {3}});
  EXPECT_TRUE(po.Precedes(1, 3));
  EXPECT_TRUE(po.Precedes(2, 3));
  EXPECT_FALSE(po.Precedes(3, 1));
  EXPECT_FALSE(po.Precedes(1, 2));  // same partition: unordered
  EXPECT_FALSE(po.Precedes(1, 9));  // absent column
}

TEST(PartialOrderTest, AppendDropsDuplicates) {
  PartialOrder po = PO({{1, 2}});
  po.AppendPartition({2, 3, 3, 4});
  ASSERT_EQ(po.partitions().size(), 2u);
  EXPECT_EQ(po.partitions()[1],
            (PartialOrder::Partition{3, 4}));
}

TEST(PartialOrderTest, AppendAllDuplicatesIsNoop) {
  PartialOrder po = PO({{1, 2}});
  po.AppendPartition({1, 2});
  EXPECT_EQ(po.partitions().size(), 1u);
}

TEST(PartialOrderTest, AppendSequencePreservesOrder) {
  PartialOrder po(0);
  po.AppendSequence({5, 3, 7});
  ASSERT_EQ(po.partitions().size(), 3u);
  EXPECT_TRUE(po.Precedes(5, 3));
  EXPECT_TRUE(po.Precedes(3, 7));
}

TEST(PartialOrderTest, AnyTotalOrderSatisfiesOrder) {
  PartialOrder po = PO({{2, 1}, {4}, {3, 5}});
  std::vector<catalog::ColumnId> total = po.AnyTotalOrder();
  ASSERT_EQ(total.size(), 5u);
  auto pos = [&](catalog::ColumnId c) {
    return std::find(total.begin(), total.end(), c) - total.begin();
  };
  for (catalog::ColumnId a : {1, 2}) {
    EXPECT_LT(pos(a), pos(4));
  }
  for (catalog::ColumnId b : {3, 5}) {
    EXPECT_GT(pos(b), pos(4));
  }
}

TEST(PartialOrderTest, TotalOrderCount) {
  EXPECT_EQ(PO({{1, 2, 3}}).TotalOrderCount(), 6u);
  EXPECT_EQ(PO({{1, 2}, {3}, {4, 5}}).TotalOrderCount(), 4u);
  EXPECT_EQ(PO({{1}}).TotalOrderCount(), 1u);
}

TEST(PartialOrderTest, CanonicalKeyStable) {
  PartialOrder a = PO({{2, 1}, {3}});
  PartialOrder b = PO({{1, 2}, {3}});
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_EQ(a, b);
  PartialOrder c = PO({{1}, {2}, {3}});
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST(PartialOrderTest, TableDistinguishesKeys) {
  PartialOrder a = PO({{1}}, 0);
  PartialOrder b = PO({{1}}, 1);
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

// ---------- MergeCandidatesPairwise ------------------------------------------

TEST(MergeTest, PaperExample) {
  // <{col1, col2, col3}> merged with <{col2, col3}> ->
  // <{col2, col3}, {col1}> (Sec. III-E).
  PartialOrder q = PO({{1, 2, 3}});
  PartialOrder p = PO({{2, 3}});
  auto merged = MergeCandidatesPairwise(p, q);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->partitions().size(), 2u);
  EXPECT_EQ(merged->partitions()[0], (PartialOrder::Partition{2, 3}));
  EXPECT_EQ(merged->partitions()[1], (PartialOrder::Partition{1}));
}

TEST(MergeTest, RequiresSubset) {
  PartialOrder p = PO({{1, 4}});
  PartialOrder q = PO({{1, 2, 3}});
  EXPECT_FALSE(MergeCandidatesPairwise(p, q).has_value());
}

TEST(MergeTest, RequiresSameTable) {
  PartialOrder p = PO({{1}}, 0);
  PartialOrder q = PO({{1, 2}}, 1);
  EXPECT_FALSE(MergeCandidatesPairwise(p, q).has_value());
}

TEST(MergeTest, ConflictingOrderRejected) {
  // P says 1 < 2; Q says 2 < 1: C_merge fails.
  PartialOrder p = PO({{1}, {2}});
  PartialOrder q = PO({{2}, {1}});
  EXPECT_FALSE(MergeCandidatesPairwise(p, q).has_value());
}

TEST(MergeTest, SelfMergeIsIdentity) {
  PartialOrder p = PO({{1, 2}, {3}});
  auto merged = MergeCandidatesPairwise(p, p);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, p);
}

TEST(MergeTest, CompatibleOrderRefines) {
  // P = <{2},{3}> (2 before 3), Q = <{1,2,3}> (unordered):
  // result <{2},{3},{1}>.
  PartialOrder p = PO({{2}, {3}});
  PartialOrder q = PO({{1, 2, 3}});
  auto merged = MergeCandidatesPairwise(p, q);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->partitions().size(), 3u);
  EXPECT_TRUE(merged->Precedes(2, 3));
  EXPECT_TRUE(merged->Precedes(3, 1));
}

TEST(MergeTest, ResultContainsAllOfQ) {
  PartialOrder p = PO({{2}});
  PartialOrder q = PO({{1, 2}, {3}, {4}});
  auto merged = MergeCandidatesPairwise(p, q);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->Columns(), q.Columns());
}

// ---------- MergePartialOrders fixpoint --------------------------------------

TEST(MergeFixpointTest, KeepsOriginals) {
  std::vector<PartialOrder> input = {PO({{1}}), PO({{2}})};
  std::vector<PartialOrder> out = MergePartialOrders(input);
  // Nothing merges (no subset relation): originals survive.
  EXPECT_EQ(out.size(), 2u);
}

TEST(MergeFixpointTest, ProducesMergedOrder) {
  std::vector<PartialOrder> input = {PO({{1, 2, 3}}), PO({{2, 3}})};
  std::vector<PartialOrder> out = MergePartialOrders(input);
  bool found = false;
  for (const PartialOrder& po : out) {
    if (po == PO({{2, 3}, {1}})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MergeFixpointTest, DeduplicatesInput) {
  std::vector<PartialOrder> input = {PO({{1, 2}}), PO({{2, 1}}),
                                     PO({{1, 2}})};
  EXPECT_EQ(MergePartialOrders(input).size(), 1u);
}

TEST(MergeFixpointTest, DropsEmptyOrders) {
  std::vector<PartialOrder> input = {PartialOrder(0), PO({{1}})};
  EXPECT_EQ(MergePartialOrders(input).size(), 1u);
}

TEST(MergeFixpointTest, ChainOfThree) {
  // {3} ⊂ {2,3} ⊂ {1,2,3}: the fixpoint must contain the doubly-merged
  // <{3},{2},{1}>.
  std::vector<PartialOrder> input = {PO({{1, 2, 3}}), PO({{2, 3}}),
                                     PO({{3}})};
  std::vector<PartialOrder> out = MergePartialOrders(input);
  bool found = false;
  for (const PartialOrder& po : out) {
    if (po == PO({{3}, {2}, {1}})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MergeFixpointTest, RespectsMaxOrdersCap) {
  std::vector<PartialOrder> input;
  for (catalog::ColumnId c = 0; c < 12; ++c) {
    input.push_back(PO({{c}}));
    input.push_back(PO({{c, static_cast<catalog::ColumnId>(c + 1)}}));
  }
  MergeOptions options;
  options.max_orders = 30;
  EXPECT_LE(MergePartialOrders(input, options).size(), 30u);
}

TEST(MergeFixpointTest, CrossTableNeverMerges) {
  std::vector<PartialOrder> input = {PO({{1, 2}}, 0), PO({{1}}, 1)};
  EXPECT_EQ(MergePartialOrders(input).size(), 2u);
}

// Property-style sweep: random inputs, check invariants.
class MergePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergePropertyTest, MergedOrdersPreserveBaseConstraints) {
  Rng rng(GetParam());
  std::vector<PartialOrder> input;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::vector<catalog::ColumnId>> parts;
    int remaining = 1 + static_cast<int>(rng.Uniform(4));
    std::set<catalog::ColumnId> used;
    for (int p = 0; p < remaining; ++p) {
      std::vector<catalog::ColumnId> part;
      const int width = 1 + static_cast<int>(rng.Uniform(3));
      for (int c = 0; c < width; ++c) {
        catalog::ColumnId col =
            static_cast<catalog::ColumnId>(rng.Uniform(6));
        if (used.insert(col).second) part.push_back(col);
      }
      if (!part.empty()) parts.push_back(part);
    }
    if (!parts.empty()) input.push_back(PO(parts));
  }
  std::vector<PartialOrder> out = MergePartialOrders(input);
  // Invariant 1: no duplicates.
  std::set<std::string> keys;
  for (const PartialOrder& po : out) {
    EXPECT_TRUE(keys.insert(po.CanonicalKey()).second);
  }
  // Invariant 2: every input order still present (self-merge identity).
  for (const PartialOrder& po : input) {
    EXPECT_TRUE(keys.count(po.CanonicalKey()) > 0);
  }
  // Invariant 3: every pairwise merge of outputs is already in the set
  // (fixpoint), as long as we are under the cap.
  if (out.size() < 100) {
    for (const PartialOrder& a : out) {
      for (const PartialOrder& b : out) {
        auto merged = MergeCandidatesPairwise(a, b);
        if (merged.has_value()) {
          EXPECT_TRUE(keys.count(merged->CanonicalKey()) > 0)
              << "missing merge of " << a.CanonicalKey() << " + "
              << b.CanonicalKey();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace aim::core
