#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/aim.h"
#include "core/continuous.h"
#include "executor/executor.h"
#include "tests/test_util.h"

namespace aim::core {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;

workload::Workload SimpleWorkload() {
  workload::Workload w;
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            50.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users ORDER BY created_at DESC LIMIT 10",
            30.0)
          .ok());
  return w;
}

TEST(AimTest, BootstrapRecommendsUsefulIndexes) {
  storage::Database db = MakeUsersDb(5000);
  AimOptions options;
  options.validate_on_clone = false;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  workload::Workload w = SimpleWorkload();
  Result<AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AimReport& report = r.ValueOrDie();
  ASSERT_FALSE(report.recommended.empty());
  // An index on org_id must be among the picks.
  bool has_org = false;
  for (const auto& c : report.recommended) {
    if (!c.def.columns.empty() && c.def.columns[0] == 1) has_org = true;
  }
  EXPECT_TRUE(has_org);
  EXPECT_EQ(report.explanations.size(), report.recommended.size());
  EXPECT_GT(report.stats.what_if_calls, 0u);
  EXPECT_GT(report.stats.partial_orders_generated, 0u);
}

TEST(AimTest, RecommendRespectsBudget) {
  storage::Database db = MakeUsersDb(5000);
  AimOptions options;
  options.validate_on_clone = false;
  options.ranking.storage_budget_bytes = 1.0;  // nothing fits
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  workload::Workload w = SimpleWorkload();
  Result<AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().recommended.empty());
}

TEST(AimTest, RunOnceMaterializesIndexes) {
  storage::Database db = MakeUsersDb(3000);
  AimOptions options;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  workload::Workload w = SimpleWorkload();
  Result<AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto indexes = db.catalog().AllIndexes(false, false);
  EXPECT_EQ(indexes.size(), r.ValueOrDie().recommended.size());
  for (const auto* idx : indexes) {
    EXPECT_TRUE(idx->created_by_automation);
    EXPECT_NE(db.btree(idx->id), nullptr);  // actually materialized
  }
}

TEST(AimTest, RunOnceImprovesObservedCpu) {
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w = SimpleWorkload();
  executor::Executor exec(&db, optimizer::CostModel());
  double before = 0;
  for (const auto& q : w.queries) {
    before += exec.Execute(q.stmt).ValueOrDie().metrics.cpu_seconds;
  }
  AutomaticIndexManager aim(&db, optimizer::CostModel(), AimOptions{});
  ASSERT_TRUE(aim.RunOnce(w, nullptr).ok());
  double after = 0;
  for (const auto& q : w.queries) {
    after += exec.Execute(q.stmt).ValueOrDie().metrics.cpu_seconds;
  }
  EXPECT_LT(after, before * 0.5);
}

TEST(AimTest, NoRegressionGuaranteeOnClone) {
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w = SimpleWorkload();
  AimOptions options;  // validation on
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok());
  for (const auto& v : r.ValueOrDie().validation.per_query) {
    EXPECT_FALSE(v.regressed);
  }
  EXPECT_TRUE(r.ValueOrDie().validation.no_regressions);
  EXPECT_TRUE(r.ValueOrDie().validation.any_query_improved);
}

TEST(AimTest, ValidationDropsUnusedIndexes) {
  storage::Database db = MakeUsersDb(2000);
  workload::Workload w = SimpleWorkload();

  // Inject a bogus candidate by running validation directly.
  CandidateIndex good;
  good.def.table = 0;
  good.def.columns = {1};  // org_id: used
  good.benefit = 1.0;
  CandidateIndex useless;
  useless.def.table = 0;
  useless.def.columns = {6};  // payload: never filtered
  useless.benefit = 1.0;

  std::vector<SelectedQuery> selected;
  for (const auto& q : w.queries) {
    SelectedQuery sq;
    sq.query = &q;
    selected.push_back(sq);
  }
  Result<CloneValidationResult> r = ValidateOnClone(
      db, {good, useless}, selected, optimizer::CostModel(), {});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().accepted.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().accepted[0].def.columns[0], 1u);
  ASSERT_EQ(r.ValueOrDie().rejected_unused.size(), 1u);
}

TEST(AimTest, CloneValidationLeavesProductionUntouched) {
  storage::Database db = MakeUsersDb(1000);
  workload::Workload w = SimpleWorkload();
  CandidateIndex c;
  c.def.table = 0;
  c.def.columns = {1};
  std::vector<SelectedQuery> selected;
  for (const auto& q : w.queries) {
    SelectedQuery sq;
    sq.query = &q;
    selected.push_back(sq);
  }
  ASSERT_TRUE(
      ValidateOnClone(db, {c}, selected, optimizer::CostModel(), {}).ok());
  EXPECT_TRUE(db.catalog().AllIndexes(true, false).empty());
}

TEST(AimTest, SkipsExistingIndexes) {
  storage::Database db = MakeUsersDb(3000);
  catalog::IndexDef existing;
  existing.table = 0;
  existing.columns = {1};
  ASSERT_TRUE(db.CreateIndex(existing).ok());
  AimOptions options;
  options.validate_on_clone = false;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  Result<AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  for (const auto& c : r.ValueOrDie().recommended) {
    EXPECT_NE(c.def.columns, existing.columns);
  }
}

TEST(AimTest, EmptyWorkloadNoop) {
  storage::Database db = MakeUsersDb(100);
  AutomaticIndexManager aim(&db, optimizer::CostModel(), AimOptions{});
  workload::Workload w;
  Result<AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().recommended.empty());
}

TEST(AimTest, MonitorDrivenSelection) {
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w = SimpleWorkload();
  // Execute the workload to populate the monitor with real stats.
  workload::WorkloadMonitor monitor;
  executor::Executor exec(&db, optimizer::CostModel());
  for (int rep = 0; rep < 50; ++rep) {
    for (const auto& q : w.queries) {
      auto res = exec.Execute(q.stmt);
      ASSERT_TRUE(res.ok());
      monitor.RecordKeyed(q.fingerprint, q.normalized_sql,
                          res.ValueOrDie().metrics);
    }
  }
  AimOptions options;
  options.validate_on_clone = false;
  options.selection.min_benefit_cores = 1e-9;
  options.selection.min_executions = 2;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<AimReport> r = aim.Recommend(w, &monitor);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().stats.queries_selected, 0u);
  EXPECT_FALSE(r.ValueOrDie().recommended.empty());
}

TEST(AimTest, JoinWorkloadGetsJoinSupportingIndexes) {
  storage::Database db = MakeOrdersDb(500, 5000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT users.id FROM users, orders WHERE "
                    "users.id = orders.user_id AND users.org_id = 3",
                    100.0)
                  .ok());
  AimOptions options;
  options.validate_on_clone = false;
  AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<AimReport> r = aim.Recommend(w, nullptr);
  ASSERT_TRUE(r.ok());
  // orders(user_id) must be recommended to support the join.
  bool has_orders_user_id = false;
  for (const auto& c : r.ValueOrDie().recommended) {
    if (c.def.table == 1 && !c.def.columns.empty() &&
        c.def.columns[0] == 1) {
      has_orders_user_id = true;
    }
  }
  EXPECT_TRUE(has_orders_user_id);
}

// ---------- continuous tuning ------------------------------------------------

TEST(ContinuousTest, DropsUnusedAutomationIndexes) {
  storage::Database db = MakeUsersDb(2000);
  catalog::IndexDef stale;
  stale.table = 0;
  stale.columns = {6};  // payload: no query uses it
  stale.created_by_automation = true;
  ASSERT_TRUE(db.CreateIndex(stale).ok());

  ContinuousTunerOptions options;
  options.drop_after_idle_intervals = 2;
  options.aim.validate_on_clone = false;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 10.0).ok());

  ASSERT_TRUE(tuner.Tick(w, nullptr).ok());
  EXPECT_EQ(db.catalog().TableIndexes(0, false).size() >= 1, true);
  ASSERT_TRUE(tuner.Tick(w, nullptr).ok());
  Result<IntervalReport> third = tuner.Tick(w, nullptr);
  ASSERT_TRUE(third.ok());
  // The payload index must be gone by now.
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    EXPECT_NE(idx->columns, stale.columns);
  }
}

TEST(ContinuousTest, ManualIndexesNeverDropped) {
  storage::Database db = MakeUsersDb(500);
  catalog::IndexDef manual;
  manual.table = 0;
  manual.columns = {6};
  manual.created_by_automation = false;  // DBA-created
  ASSERT_TRUE(db.CreateIndex(manual).ok());
  ContinuousTunerOptions options;
  options.drop_after_idle_intervals = 1;
  options.aim.validate_on_clone = false;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 10.0).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tuner.Tick(w, nullptr).ok());
  bool found = false;
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    if (idx->columns == manual.columns) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ContinuousTest, ShrinksPartiallyUsedIndex) {
  storage::Database db = MakeUsersDb(3000);
  catalog::IndexDef wide;
  wide.table = 0;
  wide.columns = {1, 2, 6};  // (org_id, status, payload)
  wide.created_by_automation = true;
  ASSERT_TRUE(db.CreateIndex(wide).ok());

  ContinuousTunerOptions options;
  options.shrink_after_idle_intervals = 2;
  options.drop_after_idle_intervals = 100;  // don't drop
  options.aim.validate_on_clone = false;
  options.aim.ranking.storage_budget_bytes = 1.0;  // AIM adds nothing new
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  workload::Workload w;
  // Only org_id is filtered: the used prefix is 1 of 3 columns.
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 10.0).ok());
  bool shrunk = false;
  for (int i = 0; i < 5 && !shrunk; ++i) {
    Result<IntervalReport> r = tuner.Tick(w, nullptr);
    ASSERT_TRUE(r.ok());
    shrunk = !r.ValueOrDie().shrunk.empty();
  }
  EXPECT_TRUE(shrunk);
  bool narrow_exists = false;
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    if (idx->columns == std::vector<catalog::ColumnId>{1}) {
      narrow_exists = true;
    }
    EXPECT_NE(idx->columns, wide.columns);
  }
  EXPECT_TRUE(narrow_exists);
}

TEST(ContinuousTest, AdaptsToWorkloadShift) {
  storage::Database db = MakeUsersDb(3000);
  ContinuousTunerOptions options;
  options.aim.validate_on_clone = false;
  options.drop_after_idle_intervals = 2;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  workload::Workload w1;
  ASSERT_TRUE(w1.Add("SELECT id FROM users WHERE org_id = 1", 100.0).ok());
  ASSERT_TRUE(tuner.Tick(w1, nullptr).ok());
  bool has_org = false;
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    if (!idx->columns.empty() && idx->columns[0] == 1) has_org = true;
  }
  ASSERT_TRUE(has_org);

  // Workload shifts to created_at lookups; org index should eventually
  // be dropped and a created_at index added.
  workload::Workload w2;
  ASSERT_TRUE(
      w2.Add("SELECT id FROM users WHERE created_at = 55", 100.0).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(tuner.Tick(w2, nullptr).ok());
  bool has_created = false;
  bool still_org = false;
  for (const auto* idx : db.catalog().AllIndexes(false, false)) {
    if (!idx->columns.empty() && idx->columns[0] == 4) has_created = true;
    if (!idx->columns.empty() && idx->columns[0] == 1) still_org = true;
  }
  EXPECT_TRUE(has_created);
  EXPECT_FALSE(still_org);
}

// ---------------------------------------------------------------------------
// Cross-interval what-if cache carry

TEST(ContinuousTest, SecondIntervalWarmStartsFromCarriedCache) {
  storage::Database db = MakeUsersDb(3000);
  ContinuousTunerOptions options;  // carry_what_if_cache defaults on
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  const workload::Workload w = SimpleWorkload();

  Result<IntervalReport> first = tuner.Tick(w, nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().cache_entries_carried, 0u);
  EXPECT_FALSE(first.ValueOrDie().aim.stats.cache_warm_start);
  EXPECT_GT(first.ValueOrDie().aim.stats.cache_misses, 0u);

  // Interval 2 starts warm but costs everything under the configuration
  // interval 1 *installed* — a fingerprint interval 1 never costed, so
  // the carried entries are unreachable (stale-proof by construction).
  Result<IntervalReport> second = tuner.Tick(w, nullptr);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second.ValueOrDie().cache_entries_carried, 0u);
  EXPECT_TRUE(second.ValueOrDie().aim.stats.cache_warm_start);
  EXPECT_GT(second.ValueOrDie().aim.stats.cache_entries_at_start, 0u);

  // Interval 3 runs at the now-stable configuration interval 2 also ran
  // at: interval 2's entries answer interval 3's costing directly.
  Result<IntervalReport> third = tuner.Tick(w, nullptr);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_GT(third.ValueOrDie().cache_entries_carried, 0u);
  EXPECT_TRUE(third.ValueOrDie().aim.stats.cache_warm_start);
  EXPECT_GT(third.ValueOrDie().aim.stats.cache_hits, 0u);
}

TEST(ContinuousTest, CacheInvalidatedWhenStatisticsDrift) {
  storage::Database db = MakeUsersDb(3000);
  ContinuousTunerOptions options;
  ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  const workload::Workload w = SimpleWorkload();

  ASSERT_TRUE(tuner.Tick(w, nullptr).ok());
  // Re-analyze with a different histogram resolution: same data, new
  // statistics — every carried cost is now computed against a stale
  // cost-model input and must be dropped, not reused.
  db.AnalyzeAll(/*histogram_buckets=*/8);
  Result<IntervalReport> second = tuner.Tick(w, nullptr);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.ValueOrDie().cache_invalidated);
  EXPECT_EQ(second.ValueOrDie().cache_entries_carried, 0u);
  EXPECT_FALSE(second.ValueOrDie().aim.stats.cache_warm_start);

  // Stable statistics afterwards: the carry resumes.
  Result<IntervalReport> third = tuner.Tick(w, nullptr);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.ValueOrDie().cache_invalidated);
  EXPECT_GT(third.ValueOrDie().cache_entries_carried, 0u);
}

TEST(ContinuousTest, CacheSnapshotWarmStartsAcrossTunerInstances) {
  const std::string path =
      ::testing::TempDir() + "/tuner_whatif_cache.bin";
  const storage::Database base = MakeUsersDb(3000);
  const workload::Workload w = SimpleWorkload();
  // The actual file is namespaced by the schema/statistics fingerprint
  // (so fleets of tuners sharing one configured path never collide).
  const std::string real_path = optimizer::SnapshotPathForFingerprint(
      path, base.catalog().SchemaStatsFingerprint());
  std::remove(real_path.c_str());

  ContinuousTunerOptions options;
  options.cache_snapshot_path = path;
  {
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    Result<IntervalReport> r = tuner.Tick(w, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Nothing to load on the very first interval ever.
    EXPECT_FALSE(r.ValueOrDie().cache_loaded_from_snapshot);
  }
  {
    // A brand-new tuner process on the same database state: interval 1
    // starts warm from the snapshot the previous instance saved.
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    Result<IntervalReport> r = tuner.Tick(w, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.ValueOrDie().cache_loaded_from_snapshot);
    EXPECT_GT(r.ValueOrDie().cache_entries_carried, 0u);
    EXPECT_TRUE(r.ValueOrDie().aim.stats.cache_warm_start);
    EXPECT_GT(r.ValueOrDie().aim.stats.cache_hits, 0u);
  }
  {
    // Corrupt the snapshot: the next instance must start cold — same
    // decisions, no error, no degraded interval.
    std::ofstream out(real_path, std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
    out.close();
    storage::Database db = base;
    ContinuousTuner tuner(&db, optimizer::CostModel(), options);
    Result<IntervalReport> r = tuner.Tick(w, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.ValueOrDie().cache_loaded_from_snapshot);
    EXPECT_FALSE(r.ValueOrDie().degraded);
    EXPECT_EQ(r.ValueOrDie().cache_entries_carried, 0u);
  }
}

}  // namespace
}  // namespace aim::core
