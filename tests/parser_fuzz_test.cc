// Parser round-trip fuzz (satellite of the observability PR): a seeded
// generator over the supported grammar asserts lex → parse → print →
// reparse reaches a printer fixpoint (identical AST both times), and
// random mutations of valid statements must produce a Status — never a
// crash, hang, or sanitizer report. The whole suite runs under the ASan
// job (AIM_SANITIZE=address), which is where the memory half of the
// guarantee is actually enforced.
//
// model_based_test.cc's token-soup test covers arbitrary garbage; this
// one covers (a) the full grammar systematically and (b) *near-valid*
// inputs, which stress different recovery paths than soup does.
//
// Run with `ctest -L oracle`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace aim::sql {
namespace {

// ---------------------------------------------------------------------------
// Grammar-directed generator. Every production here is one the parser
// documents as supported (see sql_test.cc); everything generated must
// parse.

class SqlGen {
 public:
  explicit SqlGen(Rng* rng) : rng_(rng) {}

  std::string Statement() {
    switch (rng_->Uniform(10)) {
      case 0:
        return Update();
      case 1:
        return Delete();
      case 2:
        return Insert();
      default:
        return Select();
    }
  }

 private:
  std::string Ident() {
    static constexpr const char* kNames[] = {"t",  "users", "orders",
                                             "a",  "b",     "k",
                                             "x",  "y",     "org_id"};
    return kNames[rng_->Uniform(9)];
  }

  std::string Column(bool qualified) {
    if (qualified) return Ident() + "." + Ident();
    return Ident();
  }

  std::string Literal() {
    switch (rng_->Uniform(4)) {
      case 0:
        return std::to_string(rng_->Uniform(1000));
      case 1:
        // One-decimal floats round-trip the printer exactly.
        return std::to_string(rng_->Uniform(100)) + "." +
               std::to_string(rng_->Uniform(10));
      case 2:
        return "'" + Ident() + std::to_string(rng_->Uniform(100)) + "'";
      default:
        return "?";
    }
  }

  std::string Comparison(bool qualified) {
    static constexpr const char* kOps[] = {"=",  "<",  ">",  "<=",
                                           ">=", "!=", "<=>"};
    return Column(qualified) + " " + kOps[rng_->Uniform(7)] + " " +
           Literal();
  }

  std::string Predicate(bool qualified) {
    switch (rng_->Uniform(7)) {
      case 0: {
        std::string in = Column(qualified) +
                         (rng_->Bernoulli(0.3) ? " NOT IN (" : " IN (");
        const int n = 1 + static_cast<int>(rng_->Uniform(4));
        for (int i = 0; i < n; ++i) {
          if (i > 0) in += ", ";
          in += Literal();
        }
        return in + ")";
      }
      case 1:
        return Column(qualified) + " BETWEEN " +
               std::to_string(rng_->Uniform(100)) + " AND " +
               std::to_string(100 + rng_->Uniform(100));
      case 2:
        return Column(qualified) +
               (rng_->Bernoulli(0.5) ? " IS NULL" : " IS NOT NULL");
      case 3:
        return Column(qualified) + " LIKE '" + Ident() + "%'";
      default:
        return Comparison(qualified);
    }
  }

  std::string Expr(bool qualified, int depth = 0) {
    std::string e = Predicate(qualified);
    if (depth >= 3) return e;
    while (rng_->Bernoulli(0.35)) {
      const double kind = rng_->NextDouble();
      if (kind < 0.2) {
        e = "NOT (" + e + ")";
      } else if (kind < 0.6) {
        e += " AND " + Expr(qualified, depth + 1);
      } else {
        e = "(" + e + ") OR (" + Expr(qualified, depth + 1) + ")";
      }
    }
    return e;
  }

  std::string SelectItem(bool qualified) {
    switch (rng_->Uniform(8)) {
      case 0:
        return "COUNT(*)";
      case 1:
        return "SUM(" + Column(qualified) + ")";
      case 2:
        return "MIN(" + Column(qualified) + ")";
      case 3:
        return "MAX(" + Column(qualified) + ")";
      case 4:
        return "AVG(" + Column(qualified) + ")";
      default:
        return Column(qualified);
    }
  }

  std::string Select() {
    const bool join = rng_->Bernoulli(0.25);
    std::string sql = "SELECT ";
    const int items = 1 + static_cast<int>(rng_->Uniform(3));
    for (int i = 0; i < items; ++i) {
      if (i > 0) sql += ", ";
      sql += SelectItem(join);
    }
    sql += " FROM " + Ident();
    if (join) {
      sql += (rng_->Bernoulli(0.5) ? " JOIN " : " INNER JOIN ") + Ident() +
             " ON " + Column(true) + " = " + Column(true);
    }
    if (rng_->Bernoulli(0.9)) sql += " WHERE " + Expr(join);
    if (rng_->Bernoulli(0.2)) sql += " GROUP BY " + Column(join);
    if (rng_->Bernoulli(0.3)) {
      sql += " ORDER BY " + Column(join);
      if (rng_->Bernoulli(0.5)) sql += " DESC";
    }
    if (rng_->Bernoulli(0.2)) {
      sql += " LIMIT " + std::to_string(rng_->Uniform(100));
    }
    return sql;
  }

  std::string Update() {
    std::string sql = "UPDATE " + Ident() + " SET ";
    const int n = 1 + static_cast<int>(rng_->Uniform(2));
    for (int i = 0; i < n; ++i) {
      if (i > 0) sql += ", ";
      sql += Ident() + " = " + Literal();
    }
    return sql + " WHERE " + Expr(false);
  }

  std::string Delete() {
    return "DELETE FROM " + Ident() + " WHERE " + Expr(false);
  }

  std::string Insert() {
    std::string sql = "INSERT INTO " + Ident() + " (";
    const int n = 1 + static_cast<int>(rng_->Uniform(3));
    for (int i = 0; i < n; ++i) {
      if (i > 0) sql += ", ";
      sql += Ident();
    }
    sql += ") VALUES (";
    for (int i = 0; i < n; ++i) {
      if (i > 0) sql += ", ";
      sql += Literal();
    }
    return sql + ")";
  }

  Rng* rng_;
};

// ---------------------------------------------------------------------------

class RoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzzTest, GeneratedSqlReachesPrinterFixpoint) {
  Rng rng(GetParam());
  SqlGen gen(&rng);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string sql = gen.Statement();
    Result<Statement> first = Parse(sql);
    ASSERT_TRUE(first.ok())
        << "generator emitted unsupported SQL: " << sql << " — "
        << first.status().ToString();
    const std::string printed = ToSql(first.ValueOrDie());
    Result<Statement> second = Parse(printed);
    ASSERT_TRUE(second.ok())
        << "printer output does not reparse: " << printed << " (from: "
        << sql << ")";
    // Printer fixpoint == identical AST: the printer is a deterministic
    // injective rendering of the tree, so equal renderings after one
    // round trip pin the ASTs equal without an AST-equality operator.
    EXPECT_EQ(printed, ToSql(second.ValueOrDie())) << "from: " << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedSqlReturnsStatusNeverCrashes) {
  Rng rng(GetParam() + 1000);
  SqlGen gen(&rng);
  for (int trial = 0; trial < 400; ++trial) {
    std::string sql = gen.Statement();
    // 1–4 random mutations: near-valid input, the worst case for parser
    // recovery code.
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations && !sql.empty(); ++m) {
      const size_t pos = rng.Uniform(sql.size());
      switch (rng.Uniform(5)) {
        case 0:  // delete a char
          sql.erase(pos, 1);
          break;
        case 1:  // insert a random printable char
          sql.insert(pos, 1,
                     static_cast<char>(' ' + rng.Uniform(95)));
          break;
        case 2:  // overwrite with a random byte (incl. non-ASCII)
          sql[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 3:  // truncate
          sql.resize(pos);
          break;
        default:  // duplicate a slice
          sql.insert(pos, sql.substr(pos, rng.Uniform(8) + 1));
          break;
      }
    }
    // Must return (ok or error), not crash; whatever still parses must
    // round-trip like any valid statement.
    Result<Statement> r = Parse(sql);
    if (r.ok()) {
      const std::string printed = ToSql(r.ValueOrDie());
      Result<Statement> again = Parse(printed);
      ASSERT_TRUE(again.ok()) << printed;
      EXPECT_EQ(printed, ToSql(again.ValueOrDie()));
    } else {
      EXPECT_FALSE(r.status().ToString().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace aim::sql
