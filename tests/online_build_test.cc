// Online index builds under live OLTP traffic: builder units, the seeded
// concurrent chaos suite (kills at online.snapshot.scan /
// online.delta.apply / online.swap), the concurrent-writer differential
// oracle, and the tuner-under-traffic integration tests. Everything here
// carries the `online` ctest label; the whole binary must be clean under
// AIM_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/continuous.h"
#include "storage/database.h"
#include "storage/online_index_builder.h"
#include "tests/test_util.h"
#include "workload/tpcc_oltp.h"

namespace aim {
namespace {

using aim::testing::MakeUsersDb;
using storage::Database;
using storage::OnlineBuildOptions;
using storage::OnlineBuildReport;
using storage::OnlineIndexBuilder;
using storage::Row;
using storage::RowId;

// ---------- invariant helpers ------------------------------------------------

/// FNV-1a over every heap slot (liveness + rendered values): bit-identity
/// witness for "a failed build left the heap untouched".
uint64_t HeapFingerprint(const Database& db, catalog::TableId table) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  const storage::HeapTable& heap = db.heap(table);
  mix(std::to_string(heap.slot_count()));
  for (RowId rid = 0; rid < heap.slot_count(); ++rid) {
    if (!heap.IsLive(rid)) {
      mix("|dead");
      continue;
    }
    mix("|");
    for (const sql::Value& v : heap.row(rid)) mix(v.ToSqlLiteral());
  }
  return h;
}

/// Sorted (table, key columns) inventory of every index (real and
/// hypothetical): the configuration witness for "fully absent".
std::vector<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>>
IndexSignature(const Database& db) {
  std::vector<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>>
      sig;
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(true, true)) {
    sig.emplace_back(idx->table, idx->columns);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

/// Canonical (key, rid) ordering: ties on equal keys break by rid. The
/// B+Tree keeps equal keys in insertion order, which an online build
/// (catch-up erase/insert) legitimately permutes relative to a heap-order
/// rebuild — entry *sets* must match, tie order must not.
void Canonicalize(std::vector<std::pair<Row, RowId>>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const std::pair<Row, RowId>& a,
               const std::pair<Row, RowId>& b) {
              storage::RowLess less;
              if (less(a.first, b.first)) return true;
              if (less(b.first, a.first)) return false;
              return a.second < b.second;
            });
}

/// Every (key, rid) entry of a B+Tree, canonically ordered.
std::vector<std::pair<Row, RowId>> IndexEntries(
    const storage::BTreeIndex& tree) {
  std::vector<std::pair<Row, RowId>> out;
  tree.ScanAll([&](const Row& key, RowId rid) {
    out.emplace_back(key, rid);
    return true;
  });
  Canonicalize(&out);
  return out;
}

/// What the index *should* contain: one entry per live heap row, built
/// from the row's current state. Canonically ordered.
std::vector<std::pair<Row, RowId>> ExpectedEntries(
    const Database& db, const catalog::IndexDef& def) {
  std::vector<std::pair<Row, RowId>> out;
  db.heap(def.table).Scan([&](RowId rid, const Row& row) {
    out.emplace_back(db.MakeIndexKey(def, row), rid);
    return true;
  });
  Canonicalize(&out);
  return out;
}

/// The all-or-nothing invariant every chaos schedule asserts. Caller has
/// quiesced the database or holds its latch. Returns true when the index
/// is (fully) installed.
bool CheckAllOrNothing(const Database& db, const catalog::IndexDef& def) {
  const catalog::IndexDef* found =
      db.catalog().FindIndex(def.table, def.columns);
  EXPECT_EQ(db.dml_hook_count(), 0u) << "leaked DML hook";
  if (found == nullptr) return false;  // fully absent: nothing else to check
  const storage::BTreeIndex* tree = db.btree(found->id);
  EXPECT_NE(tree, nullptr) << "catalog entry without materialized tree";
  if (tree == nullptr) return true;
  EXPECT_EQ(IndexEntries(*tree), ExpectedEntries(db, def))
      << "installed index does not match the heap";
  return true;
}

class OnlineBuildTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// ---------- quiesced builder units -------------------------------------------

TEST_F(OnlineBuildTest, QuiescentBuildMatchesBlockingCreate) {
  Database online_db = MakeUsersDb(800, /*seed=*/11);
  Database blocking_db = online_db;

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1, 2};  // (org_id, status)

  OnlineIndexBuilder builder(&online_db);
  Result<OnlineBuildReport> r = builder.Build(def);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const OnlineBuildReport& report = r.ValueOrDie();
  EXPECT_EQ(report.snapshot_rows, 800u);
  EXPECT_EQ(report.delta_applied, 0u);
  EXPECT_EQ(report.swap_tail_applied, 0u);
  EXPECT_EQ(report.catchup_rounds, 0);
  EXPECT_EQ(online_db.dml_hook_count(), 0u);

  Result<catalog::IndexId> blocking = blocking_db.CreateIndex(def);
  ASSERT_TRUE(blocking.ok());
  EXPECT_EQ(IndexEntries(*online_db.btree(report.id)),
            IndexEntries(*blocking_db.btree(blocking.ValueOrDie())));
}

TEST_F(OnlineBuildTest, RejectsBadDefinitions) {
  Database db = MakeUsersDb(100);
  OnlineIndexBuilder builder(&db);

  catalog::IndexDef unknown;
  unknown.table = 99;
  unknown.columns = {0};
  EXPECT_EQ(builder.Build(unknown).status().code(),
            Status::Code::kInvalidArgument);

  catalog::IndexDef empty;
  empty.table = 0;
  EXPECT_EQ(builder.Build(empty).status().code(),
            Status::Code::kInvalidArgument);

  catalog::IndexDef dup;
  dup.table = 0;
  dup.columns = {1};
  ASSERT_TRUE(builder.Build(dup).ok());
  EXPECT_EQ(builder.Build(dup).status().code(),
            Status::Code::kAlreadyExists);
  EXPECT_EQ(db.dml_hook_count(), 0u);
}

TEST_F(OnlineBuildTest, IndexIsMaintainedAfterSwap) {
  Database db = MakeUsersDb(300, /*seed=*/3);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  OnlineIndexBuilder builder(&db);
  Result<OnlineBuildReport> r = builder.Build(def);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Post-swap DML flows through normal index maintenance.
  Row fresh = db.heap(0).row(0);
  fresh[0] = sql::Value::Int(1000000);
  ASSERT_TRUE(db.InsertRow(0, fresh).ok());
  Row moved = db.heap(0).row(5);
  moved[1] = sql::Value::Int(424242);  // move to a new org_id key
  ASSERT_TRUE(db.UpdateRow(0, 5, moved).ok());
  ASSERT_TRUE(db.DeleteRow(0, 7).ok());

  EXPECT_EQ(IndexEntries(*db.btree(r.ValueOrDie().id)),
            ExpectedEntries(db, def));
}

TEST_F(OnlineBuildTest, TransactionRollbackDropsOnlineBuiltIndex) {
  Database db = MakeUsersDb(200);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {3};
  const auto before = IndexSignature(db);

  storage::IndexSetTransaction txn(&db, &db.latch());
  OnlineIndexBuilder builder(&db);
  Result<OnlineBuildReport> r = builder.Build(def, &txn);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(db.catalog().FindIndex(0, def.columns), nullptr);

  ASSERT_TRUE(txn.Rollback().ok());
  EXPECT_EQ(db.catalog().FindIndex(0, def.columns), nullptr);
  EXPECT_EQ(IndexSignature(db), before);
}

TEST_F(OnlineBuildTest, SnapshotFaultAbortsClean) {
  Database db = MakeUsersDb(500, /*seed=*/5);
  const uint64_t heap_before = HeapFingerprint(db, 0);
  const auto sig_before = IndexSignature(db);

  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  ScopedFault fault("online.snapshot.scan", spec);

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  OnlineIndexBuilder builder(&db);
  Result<OnlineBuildReport> r = builder.Build(def);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
  EXPECT_EQ(HeapFingerprint(db, 0), heap_before);
  EXPECT_EQ(IndexSignature(db), sig_before);
  EXPECT_EQ(db.dml_hook_count(), 0u);
}

TEST_F(OnlineBuildTest, SwapFaultAbortsClean) {
  Database db = MakeUsersDb(500, /*seed=*/5);
  const uint64_t heap_before = HeapFingerprint(db, 0);
  const auto sig_before = IndexSignature(db);

  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  ScopedFault fault("online.swap", spec);

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  OnlineIndexBuilder builder(&db);
  Result<OnlineBuildReport> r = builder.Build(def);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(HeapFingerprint(db, 0), heap_before);
  EXPECT_EQ(IndexSignature(db), sig_before);
  EXPECT_EQ(db.dml_hook_count(), 0u);

  // The aborted build left nothing behind: the same definition builds
  // fine once the fault clears.
  FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(builder.Build(def).ok());
  EXPECT_TRUE(CheckAllOrNothing(db, def));
}

// A transient (kUnavailable) delta-apply failure is retried under the
// catch-up RetryPolicy and the build still converges. The DML that feeds
// the delta log is injected deterministically through the
// after_snapshot_chunk sync hook (latch released at that point), so the
// fault crossing is guaranteed — no scheduler race.
TEST_F(OnlineBuildTest, TransientDeltaFaultRetriesWithBackoff) {
  Database db = MakeUsersDb(400, /*seed=*/13);
  FaultSpec spec;  // transient: fail twice, then succeed
  spec.code = Status::Code::kUnavailable;
  spec.fail_times = 2;
  ScopedFault fault("online.delta.apply", spec);

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  OnlineBuildOptions options;
  options.max_swap_tail = 0;  // force all delta through retried catch-up
  options.max_catchup_rounds = 256;
  bool injected = false;
  options.after_snapshot_chunk = [&](uint64_t) {
    if (injected) return;
    injected = true;
    std::unique_lock<std::shared_mutex> lock(db.latch());
    for (int i = 0; i < 8; ++i) {
      Row row = db.heap(0).row(static_cast<RowId>(i));
      row[0] = sql::Value::Int(2000000 + i);
      ASSERT_TRUE(db.InsertRow(0, row).ok());
    }
  };

  OnlineIndexBuilder builder(&db, options);
  Result<OnlineBuildReport> r = builder.Build(def);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(injected);
  const OnlineBuildReport& report = r.ValueOrDie();
  EXPECT_GE(report.delta_applied, 8u);
  EXPECT_EQ(report.swap_tail_applied, 0u);
  EXPECT_GE(report.retry_attempts, 3);  // 2 transient failures + success
  EXPECT_GT(report.retry_backoff_ms, 0.0);
  EXPECT_TRUE(CheckAllOrNothing(db, def));
}

// ---------- TPC-C workload units ---------------------------------------------

TEST(TpccTest, LoadPopulatesEveryTable) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  const workload::TpccConfig& cfg = tpcc.config();
  const Database& db = tpcc.db();
  const int districts = cfg.warehouses * cfg.districts_per_warehouse;
  EXPECT_EQ(db.heap(tpcc.warehouse_table()).live_count(),
            static_cast<uint64_t>(cfg.warehouses));
  EXPECT_EQ(db.heap(tpcc.district_table()).live_count(),
            static_cast<uint64_t>(districts));
  EXPECT_EQ(db.heap(tpcc.customer_table()).live_count(),
            static_cast<uint64_t>(districts * cfg.customers_per_district));
  EXPECT_EQ(db.heap(tpcc.item_table()).live_count(),
            static_cast<uint64_t>(cfg.items));
  EXPECT_EQ(db.heap(tpcc.stock_table()).live_count(),
            static_cast<uint64_t>(cfg.warehouses * cfg.items));
  EXPECT_EQ(db.heap(tpcc.orders_table()).live_count(),
            static_cast<uint64_t>(districts *
                                  cfg.initial_orders_per_district));
  EXPECT_EQ(db.heap(tpcc.new_orders_table()).live_count(),
            db.heap(tpcc.orders_table()).live_count());
  EXPECT_GE(db.heap(tpcc.order_line_table()).live_count(),
            5 * db.heap(tpcc.orders_table()).live_count());
}

TEST(TpccTest, TransactionsMutateTheRightTables) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  Database& db = tpcc.db();
  Rng rng(17);

  const uint64_t orders = db.heap(tpcc.orders_table()).live_count();
  const uint64_t lines = db.heap(tpcc.order_line_table()).live_count();
  ASSERT_TRUE(tpcc.NewOrder(&rng).ok());
  EXPECT_EQ(db.heap(tpcc.orders_table()).live_count(), orders + 1);
  EXPECT_EQ(db.heap(tpcc.new_orders_table()).live_count(), orders + 1);
  const uint64_t added = db.heap(tpcc.order_line_table()).live_count() - lines;
  EXPECT_GE(added, 5u);
  EXPECT_LE(added, 15u);

  const uint64_t history = db.heap(tpcc.history_table()).live_count();
  ASSERT_TRUE(tpcc.Payment(&rng).ok());
  EXPECT_EQ(db.heap(tpcc.history_table()).live_count(), history + 1);

  // Delivery clears the oldest open order of every district of one
  // warehouse: between 1 and districts_per_warehouse new_orders rows go.
  const uint64_t open = db.heap(tpcc.new_orders_table()).live_count();
  ASSERT_TRUE(tpcc.Delivery(&rng).ok());
  const uint64_t delivered =
      open - db.heap(tpcc.new_orders_table()).live_count();
  EXPECT_GE(delivered, 1u);
  EXPECT_LE(delivered,
            static_cast<uint64_t>(tpcc.config().districts_per_warehouse));
  // Orders themselves are never deleted by Delivery.
  EXPECT_EQ(db.heap(tpcc.orders_table()).live_count(), orders + 1);
}

TEST(TpccTest, DeliveryDrainsToNoOp) {
  workload::TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.initial_orders_per_district = 2;
  workload::TpccDatabase tpcc(cfg);
  ASSERT_TRUE(tpcc.Load().ok());
  Rng rng(23);
  // 4 open orders total; Delivery targets a random district, so drain with
  // slack, then confirm the empty case is an OK no-op.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(tpcc.Delivery(&rng).ok());
  EXPECT_EQ(tpcc.db().heap(tpcc.new_orders_table()).live_count(), 0u);
  ASSERT_TRUE(tpcc.Delivery(&rng).ok());
  EXPECT_EQ(tpcc.db().heap(tpcc.new_orders_table()).live_count(), 0u);
}

TEST(TpccTest, ReadQueryAndAnalyticalWorkloadExecute) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  Rng rng(31);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(tpcc.ReadQuery(&rng).ok());
  Result<workload::Workload> w = tpcc.AnalyticalWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_GE(w.ValueOrDie().queries.size(), 4u);
}

TEST(TpccTest, DriverRejectsInlinePool) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool inline_pool(1);  // Submit runs inline: would never stop
  workload::OltpDriver driver(&tpcc, &inline_pool, /*clients=*/2);
  EXPECT_EQ(driver.Start().code(), Status::Code::kInvalidArgument);
}

TEST(TpccTest, DriverRunsMixedTrafficWithoutErrors) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/5);
  ASSERT_TRUE(driver.Start().ok());
  EXPECT_TRUE(driver.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  workload::OltpStats stats = driver.Stop();
  EXPECT_FALSE(driver.running());
  EXPECT_GT(stats.total_commits(), 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.max_txn_seconds, 0.0);
}

// ---------- concurrent builds ------------------------------------------------

TEST_F(OnlineBuildTest, ConcurrentWritersAreCaughtUp) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/41);
  ASSERT_TRUE(driver.Start().ok());

  catalog::IndexDef def;
  def.table = tpcc.orders_table();
  def.columns = {3};  // o_c_id
  OnlineBuildOptions options;
  options.snapshot_chunk_rows = 8;  // many latch hand-offs to writers
  OnlineIndexBuilder builder(&tpcc.db(), options);
  Result<OnlineBuildReport> r = builder.Build(def);

  workload::OltpStats stats = driver.Stop();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_TRUE(CheckAllOrNothing(tpcc.db(), def));
  EXPECT_LE(r.ValueOrDie().swap_tail_applied, options.max_swap_tail);
}

TEST_F(OnlineBuildTest, SwapTailIsBounded) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/43);
  ASSERT_TRUE(driver.Start().ok());

  catalog::IndexDef def;
  def.table = tpcc.order_line_table();
  def.columns = {4};  // ol_i_id
  OnlineBuildOptions options;
  options.snapshot_chunk_rows = 4;
  options.max_swap_tail = 4;  // tight stall cap under sustained inserts
  options.max_catchup_rounds = 512;
  OnlineIndexBuilder builder(&tpcc.db(), options);
  Result<OnlineBuildReport> r = builder.Build(def);
  driver.Stop();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r.ValueOrDie().swap_tail_applied, 4u);
  EXPECT_TRUE(CheckAllOrNothing(tpcc.db(), def));
}

// Satellite: the concurrent-writer differential oracle. An index built
// online *while writers mutate the table* must end bit-identical to a
// blocking CreateIndex run on the quiesced final state.
TEST_F(OnlineBuildTest, ConcurrentDifferentialOracle) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/47);
  ASSERT_TRUE(driver.Start().ok());

  catalog::IndexDef def;
  def.table = tpcc.order_line_table();
  def.columns = {4, 5};  // (ol_i_id, ol_quantity)
  OnlineBuildOptions options;
  options.snapshot_chunk_rows = 8;
  OnlineIndexBuilder builder(&tpcc.db(), options);
  Result<OnlineBuildReport> r = builder.Build(def);
  workload::OltpStats stats = driver.Stop();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(tpcc.db().dml_hook_count(), 0u);

  // Oracle: rebuild from scratch on a copy of the quiesced database and
  // compare entry-for-entry.
  Database oracle = tpcc.db();
  const catalog::IndexDef* online_def =
      oracle.catalog().FindIndex(def.table, def.columns);
  ASSERT_NE(online_def, nullptr);
  ASSERT_TRUE(oracle.DropIndex(online_def->id).ok());
  Result<catalog::IndexId> fresh = oracle.CreateIndex(def);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(IndexEntries(*tpcc.db().btree(r.ValueOrDie().id)),
            IndexEntries(*oracle.btree(fresh.ValueOrDie())));
}

// ---------- seeded chaos schedules -------------------------------------------

// 120 quiesced kill schedules: arm one of the three online fault points
// with a seed-derived skip and run a build on an idle database. Whatever
// the outcome, the invariant holds — and on failure the heap is
// *bit-identical* to the build never having started.
TEST_F(OnlineBuildTest, QuiescedKillSchedules) {
  const char* points[] = {"online.snapshot.scan", "online.delta.apply",
                          "online.swap"};
  int failed = 0;
  int installed = 0;
  for (int s = 0; s < 120; ++s) {
    Database db = MakeUsersDb(600, /*seed=*/100 + s);
    const uint64_t heap_before = HeapFingerprint(db, 0);
    const auto sig_before = IndexSignature(db);

    FaultSpec spec;
    spec.code = Status::Code::kInternal;
    spec.skip = (s / 3) % 7;
    ScopedFault fault(points[s % 3], spec, /*seed=*/1000 + s);

    catalog::IndexDef def;
    def.table = 0;
    def.columns = {static_cast<catalog::ColumnId>(1 + s % 4)};
    OnlineBuildOptions options;
    options.snapshot_chunk_rows = 64;
    OnlineIndexBuilder builder(&db, options);
    Result<OnlineBuildReport> r = builder.Build(def);

    EXPECT_EQ(HeapFingerprint(db, 0), heap_before)
        << "schedule " << s << " mutated the heap";
    if (r.ok()) {
      ++installed;
      EXPECT_TRUE(CheckAllOrNothing(db, def)) << "schedule " << s;
    } else {
      ++failed;
      EXPECT_FALSE(CheckAllOrNothing(db, def))
          << "schedule " << s << " left a partial index";
      EXPECT_EQ(IndexSignature(db), sig_before) << "schedule " << s;
    }
  }
  // The schedule grid must exercise both outcomes, or it proves nothing.
  EXPECT_GT(failed, 0);
  EXPECT_GT(installed, 0);
}

// 120 concurrent kill schedules: the same fault grid, but with live OLTP
// traffic throughout. The invariant under concurrency: the index is fully
// installed and consistent with the (still-moving) heap, or entirely
// absent — never partial, and never a leaked hook.
TEST_F(OnlineBuildTest, ConcurrentKillSchedules) {
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/53);
  ASSERT_TRUE(driver.Start().ok());
  // The schedules only mean something if traffic is actually flowing:
  // wait until the clients have demonstrably committed (the orders heap
  // grows on every NewOrder).
  uint64_t orders_at_start = 0;
  {
    std::shared_lock<std::shared_mutex> lock(tpcc.db().latch());
    orders_at_start = tpcc.db().heap(tpcc.orders_table()).live_count();
  }
  for (;;) {
    std::shared_lock<std::shared_mutex> lock(tpcc.db().latch());
    if (tpcc.db().heap(tpcc.orders_table()).live_count() > orders_at_start) {
      break;
    }
  }

  const char* points[] = {"online.snapshot.scan", "online.delta.apply",
                          "online.swap"};
  catalog::IndexDef def;
  def.table = tpcc.orders_table();
  def.columns = {3};  // o_c_id
  int failed = 0;
  int installed = 0;
  for (int s = 0; s < 120; ++s) {
    FaultSpec spec;
    spec.code = Status::Code::kInternal;
    spec.skip = (s / 3) % 5;
    ScopedFault fault(points[s % 3], spec, /*seed=*/2000 + s);

    OnlineBuildOptions options;
    options.snapshot_chunk_rows = 16;
    options.max_catchup_rounds = 512;
    OnlineIndexBuilder builder(&tpcc.db(), options);
    Result<OnlineBuildReport> r = builder.Build(def);

    // Freeze traffic for the invariant check (and the cleanup drop).
    std::unique_lock<std::shared_mutex> lock(tpcc.db().latch());
    const bool present = CheckAllOrNothing(tpcc.db(), def);
    if (r.ok()) {
      ++installed;
      EXPECT_TRUE(present) << "schedule " << s << " reported success "
                           << "without installing";
      ASSERT_TRUE(
          tpcc.db().DropIndex(r.ValueOrDie().id).ok());  // reset for next
    } else {
      ++failed;
      EXPECT_FALSE(present)
          << "schedule " << s << " failed (" << r.status().ToString()
          << ") but left the index behind";
    }
  }
  workload::OltpStats stats = driver.Stop();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.total_commits(), 0u);
  EXPECT_GT(failed, 0);
  EXPECT_GT(installed, 0);
}

// ---------- tuner integration ------------------------------------------------

class OnlineTunerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// Quiesced online mode: the tick must route its installs through the
// online builder (visible in the run stats) and produce exactly the same
// kind of configuration a blocking tick would.
TEST_F(OnlineTunerTest, OnlineTickInstallsThroughBuilder) {
  Database db = MakeUsersDb(2000);
  core::ContinuousTunerOptions options;
  options.online_apply = true;
  options.aim.validate_on_clone = false;
  core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 10.0).ok());

  Result<core::IntervalReport> r = tuner.Tick(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const core::IntervalReport& report = r.ValueOrDie();
  EXPECT_FALSE(report.degraded);
  ASSERT_FALSE(report.aim.recommended.empty());
  EXPECT_EQ(report.aim.stats.online_builds,
            report.aim.recommended.size());
  for (const core::CandidateIndex& c : report.aim.recommended) {
    const catalog::IndexDef* idx =
        db.catalog().FindIndex(c.def.table, c.def.columns);
    ASSERT_NE(idx, nullptr);
    EXPECT_TRUE(idx->created_by_automation);
    EXPECT_NE(db.btree(idx->id), nullptr);
  }
  EXPECT_EQ(db.dml_hook_count(), 0u);
}

// Satellite: a hard-failed online build degrades the interval — config
// untouched, degraded report — instead of surfacing a broken state.
TEST_F(OnlineTunerTest, AbortedBuildDegradesIntervalConfigUntouched) {
  Database db = MakeUsersDb(2000);
  const auto sig_before = IndexSignature(db);
  core::ContinuousTunerOptions options;
  options.online_apply = true;
  options.aim.validate_on_clone = false;
  core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 1", 10.0).ok());

  FaultSpec spec;
  spec.code = Status::Code::kInternal;
  ScopedFault fault("online.swap", spec);
  Result<core::IntervalReport> r = tuner.Tick(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().degraded);
  EXPECT_FALSE(r.ValueOrDie().error.ok());
  EXPECT_EQ(IndexSignature(db), sig_before);
  EXPECT_EQ(db.dml_hook_count(), 0u);

  // The fault was transient at the deployment level: the next interval
  // succeeds and installs online.
  FaultRegistry::Instance().DisarmAll();
  Result<core::IntervalReport> retry = tuner.Tick(w, nullptr);
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(retry.ValueOrDie().degraded);
  EXPECT_GE(retry.ValueOrDie().aim.stats.online_builds, 1u);
}

// The headline integration: a full tuning interval against a live,
// traffic-bearing TPC-C database. The tick plans on a snapshot, installs
// online, and every installed index is consistent with the moving heap.
TEST_F(OnlineTunerTest, TunerInstallsUnderLiveTraffic) {
  workload::TpccConfig cfg;
  cfg.initial_orders_per_district = 25;  // enough rows to justify indexes
  workload::TpccDatabase tpcc(cfg);
  ASSERT_TRUE(tpcc.Load().ok());
  Result<workload::Workload> w = tpcc.AnalyticalWorkload();
  ASSERT_TRUE(w.ok());

  common::ThreadPool pool(4);
  workload::OltpDriver driver(&tpcc, &pool, /*clients=*/3, /*seed=*/59);
  ASSERT_TRUE(driver.Start().ok());

  core::ContinuousTunerOptions options;
  options.online_apply = true;
  options.aim.validate_on_clone = false;
  options.online.snapshot_chunk_rows = 32;
  options.online.max_catchup_rounds = 512;
  core::ContinuousTuner tuner(&tpcc.db(), optimizer::CostModel(), options);
  Result<core::IntervalReport> r = tuner.Tick(w.ValueOrDie(), nullptr);

  workload::OltpStats stats = driver.Stop();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const core::IntervalReport& report = r.ValueOrDie();
  EXPECT_FALSE(report.degraded)
      << report.error.ToString();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(tpcc.db().dml_hook_count(), 0u);
  EXPECT_EQ(report.aim.stats.online_builds,
            report.aim.recommended.size());
  for (const core::CandidateIndex& c : report.aim.recommended) {
    const catalog::IndexDef* idx =
        tpcc.db().catalog().FindIndex(c.def.table, c.def.columns);
    ASSERT_NE(idx, nullptr);
    catalog::IndexDef check = *idx;
    EXPECT_TRUE(CheckAllOrNothing(tpcc.db(), check));
  }
}

}  // namespace
}  // namespace aim
