#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "support/myshadow.h"
#include "support/regression_detector.h"
#include "support/stats_exporter.h"
#include "tests/test_util.h"

namespace aim::support {
namespace {

using aim::testing::MakeUsersDb;

TEST(StatsExporterTest, AggregatesAcrossReplicas) {
  workload::WorkloadMonitor m0, m1, m2;
  executor::ExecutionMetrics m;
  m.rows_examined = 100;
  m.rows_sent = 10;
  m.cpu_seconds = 1.0;
  m0.RecordKeyed(1, "q", m);
  m1.RecordKeyed(1, "q", m);
  m1.RecordKeyed(1, "q", m);
  m2.RecordKeyed(2, "other", m);

  StatsExporter exporter;
  exporter.RegisterReplica("replica-a", &m0);
  exporter.RegisterReplica("replica-b", &m1);
  exporter.RegisterReplica("replica-c", &m2);

  int messages = 0;
  exporter.Subscribe([&](const StatsMessage& msg) {
    ++messages;
    EXPECT_EQ(msg.interval, 0);
  });
  Result<size_t> published = exporter.ExportInterval();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.ValueOrDie(), 3u);
  EXPECT_EQ(messages, 3);

  // Warehouse view: query 1 has 3 executions across replicas.
  const workload::QueryStats* agg = exporter.aggregate().Find(1);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->executions, 3u);
  // Replica monitors were reset (delta semantics).
  EXPECT_EQ(m0.distinct_queries(), 0u);
  EXPECT_EQ(exporter.intervals_exported(), 1);
}

TEST(StatsExporterTest, SecondIntervalAccumulates) {
  workload::WorkloadMonitor replica;
  StatsExporter exporter;
  exporter.RegisterReplica("r", &replica);
  executor::ExecutionMetrics m;
  m.cpu_seconds = 1.0;
  replica.RecordKeyed(7, "q", m);
  ASSERT_TRUE(exporter.ExportInterval().ok());
  replica.RecordKeyed(7, "q", m);
  ASSERT_TRUE(exporter.ExportInterval().ok());
  EXPECT_EQ(exporter.aggregate().Find(7)->executions, 2u);
  EXPECT_EQ(exporter.intervals_exported(), 2);
}

TEST(StatsExporterTest, FailedExportDoesNotAdvanceInterval) {
  workload::WorkloadMonitor replica;
  StatsExporter exporter;
  exporter.RegisterReplica("r", &replica);
  executor::ExecutionMetrics m;
  m.cpu_seconds = 1.0;
  replica.RecordKeyed(7, "q", m);

  std::vector<int> seen_intervals;
  exporter.Subscribe([&](const StatsMessage& msg) {
    seen_intervals.push_back(msg.interval);
  });

  // Publish fails mid-export: the interval must not commit — monitors
  // keep their deltas, the aggregate is untouched, interval_ unchanged.
  {
    FaultSpec spec;
    spec.code = Status::Code::kUnavailable;
    ScopedFault fault("support.stats.export", spec);
    Result<size_t> r = exporter.ExportInterval();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
  }
  EXPECT_EQ(exporter.intervals_exported(), 0);
  EXPECT_EQ(exporter.aggregate().Find(7), nullptr);
  EXPECT_EQ(replica.Find(7)->executions, 1u);

  // Retry re-exports the SAME interval number with the same deltas —
  // at-least-once delivery, deduplicable by (replica, interval).
  Result<size_t> retry = exporter.ExportInterval();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie(), 1u);
  ASSERT_EQ(seen_intervals.size(), 1u);
  EXPECT_EQ(seen_intervals[0], 0);
  EXPECT_EQ(exporter.intervals_exported(), 1);
  ASSERT_NE(exporter.aggregate().Find(7), nullptr);
  EXPECT_EQ(exporter.aggregate().Find(7)->executions, 1u);
  EXPECT_EQ(replica.distinct_queries(), 0u);  // reset only after success
}

TEST(MyShadowTest, FullCloneReplays) {
  storage::Database db = MakeUsersDb(1000);
  MyShadow shadow(db);
  EXPECT_EQ(shadow.db().heap(0).live_count(), 1000u);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5").ok());
  Result<ShadowReplayResult> rr =
      shadow.Replay(w, optimizer::CostModel(), /*repetitions=*/3);
  ASSERT_TRUE(rr.ok());
  const ShadowReplayResult& r = rr.ValueOrDie();
  EXPECT_EQ(r.executed, 3u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.total_cpu_seconds, 0.0);
  EXPECT_EQ(r.monitor.Find(w.queries[0].fingerprint)->executions, 3u);
}

TEST(MyShadowTest, SampledCloneIsSmaller) {
  storage::Database db = MakeUsersDb(2000);
  MyShadow shadow(db, /*sample_fraction=*/0.25);
  const uint64_t sampled = shadow.db().heap(0).live_count();
  EXPECT_LT(sampled, 1000u);
  EXPECT_GT(sampled, 100u);
  // Statistics re-analyzed for the sample.
  EXPECT_EQ(shadow.db().catalog().table(0).stats.row_count, sampled);
}

TEST(MyShadowTest, SampledCloneCopiesIndexes) {
  storage::Database db = MakeUsersDb(500);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  MyShadow shadow(db, 0.5);
  EXPECT_EQ(shadow.db().catalog().AllIndexes(false, false).size(), 1u);
}

TEST(MyShadowTest, MaterializeBuildsRealIndexes) {
  storage::Database db = MakeUsersDb(500);
  MyShadow shadow(db);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {2};
  def.hypothetical = true;  // must be forced real on the shadow
  ASSERT_TRUE(shadow.Materialize({def}).ok());
  const auto indexes = shadow.db().catalog().AllIndexes(false, false);
  ASSERT_EQ(indexes.size(), 1u);
  EXPECT_NE(shadow.db().btree(indexes[0]->id), nullptr);
  // Production untouched.
  EXPECT_TRUE(db.catalog().AllIndexes(true, false).empty());
}

TEST(RegressionDetectorTest, FlagsCpuSpike) {
  RegressionDetector detector;
  auto stats_at = [](double cpu_avg) {
    workload::QueryStats s;
    s.fingerprint = 42;
    s.executions = 100;
    s.total_cpu_seconds = cpu_avg * 100;
    return std::vector<workload::QueryStats>{s};
  };
  // Build a stable baseline.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(detector.Observe(stats_at(1.0)).empty());
  }
  // Spike to 3x: flagged, with suspect automation index attached.
  std::vector<Regression> r =
      detector.Observe(stats_at(3.0), {{7, 0}});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].fingerprint, 42u);
  EXPECT_GT(r[0].ratio, 2.0);
  ASSERT_EQ(r[0].suspect_indexes.size(), 1u);
  EXPECT_EQ(r[0].suspect_indexes[0], 7u);
}

TEST(RegressionDetectorTest, IgnoresLowTraffic) {
  RegressionDetector detector;
  workload::QueryStats s;
  s.fingerprint = 1;
  s.executions = 2;  // below min_executions
  s.total_cpu_seconds = 100.0;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(detector.Observe({s}).empty());
  }
}

TEST(RegressionDetectorTest, GradualDriftNotFlagged) {
  RegressionDetector detector;
  auto stats_at = [](double cpu_avg) {
    workload::QueryStats s;
    s.fingerprint = 9;
    s.executions = 50;
    s.total_cpu_seconds = cpu_avg * 50;
    return std::vector<workload::QueryStats>{s};
  };
  double cpu = 1.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(detector.Observe(stats_at(cpu)).empty())
        << "interval " << i;
    cpu *= 1.05;  // 5% per interval stays under the 1.5x window ratio
  }
}

TEST(RegressionDetectorTest, RecoversAfterWindowRefills) {
  RegressionDetector detector;
  auto stats_at = [](double cpu_avg) {
    workload::QueryStats s;
    s.fingerprint = 5;
    s.executions = 50;
    s.total_cpu_seconds = cpu_avg * 50;
    return std::vector<workload::QueryStats>{s};
  };
  for (int i = 0; i < 4; ++i) detector.Observe(stats_at(1.0));
  EXPECT_FALSE(detector.Observe(stats_at(5.0)).empty());
  // The new level becomes the baseline after the window refills.
  for (int i = 0; i < 4; ++i) detector.Observe(stats_at(5.0));
  EXPECT_TRUE(detector.Observe(stats_at(5.0)).empty());
}

}  // namespace
}  // namespace aim::support
