#include <gtest/gtest.h>

#include "core/sharding.h"
#include "executor/executor.h"
#include "tests/test_util.h"

namespace aim::core {
namespace {

using aim::testing::MakeUsersDb;

/// Builds `n` schema-identical shards with different seeds (different row
/// contents, same distributions).
std::vector<storage::Database> MakeShards(int n, uint64_t rows = 2000) {
  std::vector<storage::Database> dbs;
  for (int i = 0; i < n; ++i) {
    dbs.push_back(MakeUsersDb(rows, /*seed=*/100 + i));
  }
  return dbs;
}

std::vector<Shard> Wrap(std::vector<storage::Database>* dbs,
                        const std::vector<workload::WorkloadMonitor>*
                            monitors = nullptr) {
  std::vector<Shard> shards;
  for (size_t i = 0; i < dbs->size(); ++i) {
    Shard s;
    s.db = &(*dbs)[i];
    if (monitors != nullptr && i < monitors->size()) {
      s.monitor = &(*monitors)[i];
    }
    shards.push_back(s);
  }
  return shards;
}

TEST(ShardingTest, RecommendAggregatesStatsAcrossShards) {
  std::vector<storage::Database> dbs = MakeShards(3);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 1.0).ok());

  // The query is hot on shard 0 only; per-shard stats alone would be
  // below threshold, but the aggregate clears it.
  std::vector<workload::WorkloadMonitor> monitors(3);
  executor::ExecutionMetrics m;
  m.rows_examined = 2000;
  m.rows_sent = 20;
  m.cpu_seconds = 0.5;
  for (int i = 0; i < 120; ++i) {
    monitors[0].RecordKeyed(w.queries[0].fingerprint,
                            w.queries[0].normalized_sql, m);
  }

  ShardedOptions options;
  options.aim.selection.min_executions = 50;
  options.aim.selection.min_benefit_cores = 1e-9;
  ShardedIndexManager manager(options);
  std::vector<Shard> shards = Wrap(&dbs, &monitors);
  Result<ShardedReport> r =
      manager.Recommend(w, shards, optimizer::CostModel());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().aim.recommended.empty());
}

TEST(ShardingTest, ReplicationFactorTightensBudget) {
  // An index that fits a budget once does not fit when every shard must
  // store it.
  std::vector<storage::Database> dbs = MakeShards(4);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());

  const double one_copy_bytes =
      dbs[0].catalog().IndexSizeBytes([&] {
        catalog::IndexDef def;
        def.table = 0;
        def.columns = {1};
        return def;
      }());

  ShardedOptions options;
  options.aim.ranking.storage_budget_bytes = one_copy_bytes * 2.0;
  ShardedIndexManager manager(options);
  std::vector<Shard> shards = Wrap(&dbs);
  Result<ShardedReport> r =
      manager.Recommend(w, shards, optimizer::CostModel());
  ASSERT_TRUE(r.ok());
  // 4 shards x size > 2 x size: nothing fits.
  EXPECT_TRUE(r.ValueOrDie().aim.recommended.empty());

  // The same budget with a single shard accepts the index.
  std::vector<Shard> single = {Shard{&dbs[0], nullptr}};
  Result<ShardedReport> r1 =
      manager.Recommend(w, single, optimizer::CostModel());
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.ValueOrDie().aim.recommended.empty());
}

TEST(ShardingTest, RunOnceAppliesCommonDesignEverywhere) {
  std::vector<storage::Database> dbs = MakeShards(3);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());
  ShardedIndexManager manager;
  std::vector<Shard> shards = Wrap(&dbs);
  Result<ShardedReport> r =
      manager.RunOnce(w, shards, optimizer::CostModel());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.ValueOrDie().aim.recommended.empty());
  for (const storage::Database& db : dbs) {
    EXPECT_EQ(db.catalog().AllIndexes(false, false).size(),
              r.ValueOrDie().aim.recommended.size());
  }
}

TEST(ShardingTest, ComprehensiveValidationCoversAllShards) {
  std::vector<storage::Database> dbs = MakeShards(3, 1500);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());
  ShardedOptions options;
  options.comprehensive_validation = true;
  ShardedIndexManager manager(options);
  std::vector<Shard> shards = Wrap(&dbs);
  Result<ShardedReport> r =
      manager.RunOnce(w, shards, optimizer::CostModel());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().validations.size(), 3u);
  // Default validation covers only the first shard.
  ShardedIndexManager cheap;
  std::vector<storage::Database> dbs2 = MakeShards(3, 1500);
  std::vector<Shard> shards2 = Wrap(&dbs2);
  Result<ShardedReport> r2 =
      cheap.RunOnce(w, shards2, optimizer::CostModel());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().validations.size(), 1u);
}

TEST(ShardingTest, UnusedEverywhereRejected) {
  std::vector<storage::Database> dbs = MakeShards(2);
  workload::Workload w;
  // The workload never filters payload; force a payload candidate by
  // running RunOnce on a workload that generates it plus one that uses
  // org_id.
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());
  ShardedOptions options;
  options.comprehensive_validation = true;
  ShardedIndexManager manager(options);
  std::vector<Shard> shards = Wrap(&dbs);
  Result<ShardedReport> r =
      manager.RunOnce(w, shards, optimizer::CostModel());
  ASSERT_TRUE(r.ok());
  // Everything materialized must be used by the validation replay.
  for (const auto& v : r.ValueOrDie().validations) {
    EXPECT_TRUE(v.result.rejected_unused.empty());
  }
}

TEST(ShardingTest, NoShardsIsAnError) {
  workload::Workload w;
  ShardedIndexManager manager;
  Result<ShardedReport> r =
      manager.Recommend(w, {}, optimizer::CostModel());
  EXPECT_FALSE(r.ok());
}

TEST(RankingReplicationTest, FactorScalesBudgetConsumption) {
  storage::Database db = MakeUsersDb(3000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q = aim::testing::MustQuery(
      "SELECT id FROM users WHERE org_id = 5", 100.0);
  SelectedQuery sq;
  sq.query = &q;
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  const double size = db.catalog().IndexSizeBytes(def);

  RankingOptions options;
  options.storage_budget_bytes = size * 3.0;
  options.storage_replication_factor = 2.0;
  RankingResult fits = RankAndSelect({def}, {sq}, &what_if, options);
  EXPECT_EQ(fits.selected.size(), 1u);
  EXPECT_NEAR(fits.selected_bytes, size * 2.0, size * 0.01);

  options.storage_replication_factor = 4.0;
  RankingResult too_big = RankAndSelect({def}, {sq}, &what_if, options);
  EXPECT_TRUE(too_big.selected.empty());
}

}  // namespace
}  // namespace aim::core
