#include <gtest/gtest.h>

#include <memory>

#include "advisors/aim_adapter.h"
#include "advisors/autoadmin.h"
#include "advisors/db2advis.h"
#include "advisors/drop.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "tests/test_util.h"

namespace aim::advisors {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;

workload::Workload AdvisorWorkload() {
  workload::Workload w;
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users WHERE status = 2 AND score > 500", 5.0)
          .ok());
  EXPECT_TRUE(
      w.Add("SELECT id FROM users ORDER BY created_at DESC LIMIT 10", 3.0)
          .ok());
  return w;
}

struct NamedAdvisor {
  std::shared_ptr<Advisor> advisor;
  // AimAdvisor needs a database; created per-invocation below.
};

class AdvisorContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Advisor> Make(storage::Database* db) {
    const std::string name = GetParam();
    if (name == "Extend") return std::make_unique<ExtendAdvisor>();
    if (name == "DTA") return std::make_unique<DtaAdvisor>();
    if (name == "Drop") return std::make_unique<DropAdvisor>();
    if (name == "DB2Advis") return std::make_unique<Db2AdvisAdvisor>();
    if (name == "AutoAdmin") return std::make_unique<AutoAdminAdvisor>();
    if (name == "AIM") return std::make_unique<AimAdvisor>(db);
    ADD_FAILURE() << "unknown advisor " << name;
    return nullptr;
  }
};

TEST_P(AdvisorContractTest, ReducesCostWithinBudget) {
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w = AdvisorWorkload();
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  const double base_cost = WorkloadCost(w, &what_if).ValueOrDie();

  std::unique_ptr<Advisor> advisor = Make(&db);
  AdvisorOptions options;
  options.max_index_width = 3;
  options.storage_budget_bytes = 256.0 * 1024 * 1024;
  Result<AdvisorResult> r = advisor->Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AdvisorResult& result = r.ValueOrDie();

  EXPECT_FALSE(result.indexes.empty()) << advisor->name();
  EXPECT_LT(result.final_workload_cost, base_cost) << advisor->name();
  EXPECT_LE(result.total_size_bytes, options.storage_budget_bytes);
  for (const auto& def : result.indexes) {
    EXPECT_LE(def.columns.size(), options.max_index_width);
  }
  EXPECT_GE(result.runtime_seconds, 0.0);
}

TEST_P(AdvisorContractTest, TinyBudgetYieldsNothingOversized) {
  storage::Database db = MakeUsersDb(2000);
  workload::Workload w = AdvisorWorkload();
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  std::unique_ptr<Advisor> advisor = Make(&db);
  AdvisorOptions options;
  options.storage_budget_bytes = 10.0;  // nothing fits
  Result<AdvisorResult> r = advisor->Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().indexes.empty()) << advisor->name();
}

INSTANTIATE_TEST_SUITE_P(All, AdvisorContractTest,
                         ::testing::Values("Extend", "DTA", "Drop",
                                           "DB2Advis", "AutoAdmin",
                                           "AIM"));

TEST(ExtractIndexableColumnsTest, CategoriesPopulated) {
  storage::Database db = MakeOrdersDb(100, 100);
  Result<workload::Query> q = workload::MakeQuery(
      "SELECT users.email FROM users, orders WHERE users.id = "
      "orders.user_id AND users.org_id = 5 AND orders.day > 100 "
      "ORDER BY orders.day");
  ASSERT_TRUE(q.ok());
  Result<std::vector<IndexableColumns>> r =
      ExtractIndexableColumns(q.ValueOrDie().stmt, db.catalog());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  for (const auto& ic : r.ValueOrDie()) {
    EXPECT_FALSE(ic.all.empty());
    if (db.catalog().table(ic.table).name == "users") {
      EXPECT_EQ(ic.equality.size(), 1u);  // org_id
      EXPECT_EQ(ic.join.size(), 1u);      // id
    } else {
      EXPECT_EQ(ic.range.size(), 1u);     // day
      EXPECT_EQ(ic.ordering.size(), 1u);  // day
    }
  }
}

TEST(DtaTest, CandidateEnumerationWidthBound) {
  storage::Database db = MakeUsersDb(100);
  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 1 AND status = 2 AND "
            "score > 3 AND created_at < 4")
          .ok());
  Result<std::vector<catalog::IndexDef>> two =
      DtaAdvisor::EnumerateCandidates(w, db.catalog(), 2);
  Result<std::vector<catalog::IndexDef>> three =
      DtaAdvisor::EnumerateCandidates(w, db.catalog(), 3);
  ASSERT_TRUE(two.ok() && three.ok());
  for (const auto& def : two.ValueOrDie()) {
    EXPECT_LE(def.columns.size(), 2u);
  }
  // Wider cap enumerates strictly more candidates (the DTA blow-up the
  // paper works around, Sec. VIII-a).
  EXPECT_GT(three.ValueOrDie().size(), two.ValueOrDie().size());
}

TEST(DtaTest, EqualityColumnsLeadKeyOrder) {
  storage::Database db = MakeUsersDb(100);
  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 1 AND score > 5").ok());
  Result<std::vector<catalog::IndexDef>> r =
      DtaAdvisor::EnumerateCandidates(w, db.catalog(), 2);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& def : r.ValueOrDie()) {
    if (def.columns == std::vector<catalog::ColumnId>{1, 3}) found = true;
    // Never range column before equality column.
    EXPECT_NE(def.columns, (std::vector<catalog::ColumnId>{3, 1}));
  }
  EXPECT_TRUE(found);
}

TEST(ExtendTest, GrowsOneAttributeAtATime) {
  storage::Database db = MakeUsersDb(5000);
  workload::Workload w;
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE org_id = 3 AND status = 1 AND "
            "score > 100",
            10.0)
          .ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  ExtendAdvisor advisor;
  AdvisorOptions options;
  options.max_index_width = 3;
  Result<AdvisorResult> r = advisor.Recommend(w, &what_if, options);
  ASSERT_TRUE(r.ok());
  // Extend should have grown a multi-column index for the conjunctive
  // filter.
  bool multi = false;
  for (const auto& def : r.ValueOrDie().indexes) {
    if (def.columns.size() >= 2) multi = true;
  }
  EXPECT_TRUE(multi);
}

TEST(GreedyForwardSelectTest, StopsWhenNoBenefit) {
  storage::Database db = MakeUsersDb(1000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5").ok());
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  catalog::IndexDef useful;
  useful.table = 0;
  useful.columns = {1};
  catalog::IndexDef useless;
  useless.table = 0;
  useless.columns = {6};
  AdvisorOptions options;
  Result<std::vector<catalog::IndexDef>> r =
      GreedyForwardSelect({useful, useless}, w, &what_if, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 1u);
  EXPECT_EQ(r.ValueOrDie()[0].columns, useful.columns);
}

TEST(ConfigHelpersTest, ContainsAndSize) {
  storage::Database db = MakeUsersDb(100);
  catalog::IndexDef a;
  a.table = 0;
  a.columns = {1};
  catalog::IndexDef b;
  b.table = 0;
  b.columns = {2};
  std::vector<catalog::IndexDef> config = {a};
  EXPECT_TRUE(ConfigContains(config, a));
  EXPECT_FALSE(ConfigContains(config, b));
  EXPECT_GT(ConfigSizeBytes(config, db.catalog()), 0.0);
  EXPECT_EQ(ConfigSizeBytes({}, db.catalog()), 0.0);
}

TEST(AdvisorComparisonTest, AimFarFewerWhatIfCallsThanDta) {
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w = AdvisorWorkload();
  AdvisorOptions options;
  options.max_index_width = 3;

  optimizer::WhatIfOptimizer wi_dta(db.catalog(), optimizer::CostModel());
  DtaAdvisor dta;
  Result<AdvisorResult> dta_r = dta.Recommend(w, &wi_dta, options);
  ASSERT_TRUE(dta_r.ok());

  optimizer::WhatIfOptimizer wi_aim(db.catalog(), optimizer::CostModel());
  AimAdvisor aim(&db);
  Result<AdvisorResult> aim_r = aim.Recommend(w, &wi_aim, options);
  ASSERT_TRUE(aim_r.ok());

  // The headline claim: AIM's structural generation needs far fewer
  // optimizer calls than enumeration-based DTA.
  EXPECT_LT(aim_r.ValueOrDie().what_if_calls,
            dta_r.ValueOrDie().what_if_calls / 2);
}

}  // namespace
}  // namespace aim::advisors
