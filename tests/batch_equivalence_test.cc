// Row-vs-batch differential suite: the vectorized batch executor must be
// *bit-identical* to the row-at-a-time interpreter — same rows in the
// same order, and the same ExecutionMetrics down to the last bit of
// cost_units / cpu_seconds (doubles compare in hexfloat, so "close"
// never passes for "identical"). Per-operator batch counters are
// observational and deliberately excluded, like tracing spans.
//
// Coverage: the 22 TPC-H templates (heap and AIM-tuned), seeded random
// query storms over a tuned single-table schema, hand-written edge
// statements (skip scans, index-merge ORs, IS NULL, LIKE, '?' params,
// LIMIT early-stop), TPC-C analytical probes with interleaved DML on
// database copies, and whole AIM pipeline runs replayed under either
// engine at 1/2/8 threads with the what-if cache on and off.
//
// Run with `ctest -L batch` (and under TSan: AIM_SANITIZE=thread).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/aim.h"
#include "executor/executor.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/tpcc_oltp.h"
#include "workload/tpch.h"

namespace aim {
namespace {

using aim::testing::MakeOrdersDb;
using aim::testing::MakeUsersDb;
using aim::testing::MustParse;

// ---------------------------------------------------------------------------
// Signatures

/// Everything observable about one execution except the per-operator
/// batch counters: output rows in exact order, every metric counter, the
/// used-index sequence, and the cost doubles in hexfloat.
std::string ResultSignature(const executor::ExecuteResult& r) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const storage::Row& row : r.rows) {
    for (const sql::Value& v : row) out << v.ToSqlLiteral() << "|";
    out << "\n";
  }
  const executor::ExecutionMetrics& m = r.metrics;
  out << "examined=" << m.rows_examined
      << " idx_read=" << m.index_entries_read
      << " heap_read=" << m.heap_rows_read << " pk=" << m.pk_lookups
      << " sent=" << m.rows_sent << " modified=" << m.rows_modified
      << " idx_written=" << m.index_entries_written
      << " sorted=" << m.rows_sorted << "\n";
  out << "cost=" << m.cost_units << " cpu=" << m.cpu_seconds << "\n";
  out << "used=";
  for (catalog::IndexId id : m.used_indexes) out << id << ",";
  out << "\n";
  return out.str();
}

executor::ExecutorOptions EngineOptions(executor::EngineKind kind) {
  executor::ExecutorOptions options;
  options.engine = kind;
  return options;
}

/// Executes `sql` under both engines against the same database and
/// demands identical signatures. Returns the batch result for callers
/// that want to assert more.
executor::ExecuteResult ExpectEnginesAgree(storage::Database* db,
                                           const std::string& sql) {
  const sql::Statement stmt = MustParse(sql);
  executor::Executor row_exec(
      db, optimizer::CostModel(),
      EngineOptions(executor::EngineKind::kRowAtATime));
  executor::Executor batch_exec(
      db, optimizer::CostModel(),
      EngineOptions(executor::EngineKind::kBatch));
  Result<executor::ExecuteResult> row = row_exec.Execute(stmt);
  Result<executor::ExecuteResult> batch = batch_exec.Execute(stmt);
  EXPECT_TRUE(row.ok()) << sql << ": " << row.status().ToString();
  EXPECT_TRUE(batch.ok()) << sql << ": " << batch.status().ToString();
  if (!row.ok() || !batch.ok()) return executor::ExecuteResult{};
  EXPECT_EQ(ResultSignature(row.ValueOrDie()),
            ResultSignature(batch.ValueOrDie()))
      << sql;
  return batch.MoveValue();
}

/// Installs AIM's recommendation for `w` on `db` (so the comparisons
/// exercise real index paths, not just heap scans).
void TuneFor(storage::Database* db, const workload::Workload& w) {
  core::AimOptions options;
  options.num_threads = 2;
  core::AutomaticIndexManager aim(db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

// ---------------------------------------------------------------------------
// TPC-H templates

TEST(BatchEquivalenceTest, TpchTemplatesHeapAndTuned) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db;
  workload::TpchOptions topt;
  topt.materialized_sf = 0.005;
  ASSERT_TRUE(workload::BuildTpch(&db, topt).ok());
  Result<workload::Workload> w = workload::TpchQueries();
  ASSERT_TRUE(w.ok());

  uint64_t rows_total = 0;
  for (const workload::Query& q : w.ValueOrDie().queries) {
    rows_total += ExpectEnginesAgree(&db, q.sql).rows.size();
  }
  EXPECT_GT(rows_total, 0u) << "every TPC-H template came back empty";

  // Same templates against the configuration AIM recommends for them:
  // join steps become batched index probes instead of scans.
  TuneFor(&db, w.ValueOrDie());
  uint64_t index_entries = 0;
  for (const workload::Query& q : w.ValueOrDie().queries) {
    index_entries +=
        ExpectEnginesAgree(&db, q.sql).metrics.index_entries_read;
  }
  EXPECT_GT(index_entries, 0u)
      << "tuned TPC-H run never took an index path";
}

// ---------------------------------------------------------------------------
// Seeded random storms (single-table) + join shapes

class BatchOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchOracleTest, RandomQueriesAgree) {
  FaultRegistry::Instance().DisarmAll();
  constexpr uint64_t kRows = 1500;
  Rng rng(GetParam());

  // The oracle_test generator grammar, inlined: random conjunctions /
  // disjunctions of =, <, >, BETWEEN, IN, LIKE over the users columns,
  // with occasional aggregates and ORDER BY.
  auto int_col = [&](uint64_t* domain) -> std::string {
    static constexpr const char* kNames[] = {"id", "org_id", "status",
                                             "score", "created_at"};
    const uint64_t domains[] = {kRows, 100, 5, 1000, kRows};
    const size_t i = rng.Uniform(5);
    *domain = domains[i];
    return kNames[i];
  };
  auto predicate = [&]() -> std::string {
    uint64_t domain = 0;
    const std::string col = int_col(&domain);
    const auto lit = [&]() {
      return std::to_string(rng.Uniform(
          rng.Bernoulli(0.1) ? domain * 2 + 1 : domain));
    };
    switch (rng.Uniform(6)) {
      case 0:
        return col + " = " + lit();
      case 1:
        return col + " < " + lit();
      case 2:
        return col + " > " + lit();
      case 3: {
        const uint64_t lo = rng.Uniform(domain);
        return col + " BETWEEN " + std::to_string(lo) + " AND " +
               std::to_string(lo + 1 + rng.Uniform(domain / 4 + 1));
      }
      case 4: {
        std::string in = col + " IN (";
        const int n = 2 + static_cast<int>(rng.Uniform(3));
        for (int i = 0; i < n; ++i) {
          if (i > 0) in += ", ";
          in += lit();
        }
        return in + ")";
      }
      default:
        return "email LIKE 'user" + std::to_string(rng.Uniform(10)) + "%'";
    }
  };
  auto where = [&]() {
    std::string out = predicate();
    const int extra = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < extra; ++i) {
      if (rng.Bernoulli(0.25)) {
        out = "(" + out + ") OR (" + predicate() + ")";
      } else {
        out += " AND " + predicate();
      }
    }
    return out;
  };
  auto next_query = [&]() -> std::string {
    if (rng.Bernoulli(0.1)) {
      if (rng.Bernoulli(0.5)) {
        return "SELECT status, COUNT(*) FROM users WHERE " + where() +
               " GROUP BY status";
      }
      return "SELECT MIN(score), MAX(score), COUNT(*) FROM users WHERE " +
             where();
    }
    static constexpr const char* kCols[] = {"id",         "org_id",
                                            "status",     "score",
                                            "created_at", "email"};
    std::string cols;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      if (i > 0) cols += ", ";
      cols += kCols[rng.Uniform(6)];
    }
    std::string sql = "SELECT " + cols + " FROM users WHERE " + where();
    if (rng.Bernoulli(0.2)) {
      sql += std::string(" ORDER BY ") + kCols[rng.Uniform(6)];
      if (rng.Bernoulli(0.5)) sql += " DESC";
      // LIMIT is safe here (unlike the config oracle): both engines run
      // the *same* plan, so tie-breaks are deterministic and must match.
      if (rng.Bernoulli(0.5)) {
        sql += " LIMIT " + std::to_string(1 + rng.Uniform(20));
      }
    } else if (rng.Bernoulli(0.15)) {
      sql += " LIMIT " + std::to_string(1 + rng.Uniform(20));
    }
    return sql;
  };

  constexpr int kQueries = 220;
  workload::Workload w;
  std::vector<std::string> queries;
  queries.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    std::string sql = next_query();
    ASSERT_TRUE(w.Add(sql, 1.0).ok()) << sql;
    queries.push_back(std::move(sql));
  }

  storage::Database heap_db = MakeUsersDb(kRows, GetParam() + 31);
  storage::Database tuned_db = heap_db;
  TuneFor(&tuned_db, w);

  uint64_t tuned_index_entries = 0;
  for (const std::string& sql : queries) {
    ExpectEnginesAgree(&heap_db, sql);
    tuned_index_entries +=
        ExpectEnginesAgree(&tuned_db, sql).metrics.index_entries_read;
  }
  EXPECT_GT(tuned_index_entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchOracleTest,
                         ::testing::Values<uint64_t>(1, 2, 3));

TEST(BatchEquivalenceTest, JoinShapesAgree) {
  FaultRegistry::Instance().DisarmAll();
  Rng rng(17);
  workload::Workload w;
  std::vector<std::string> queries;
  for (int i = 0; i < 40; ++i) {
    std::string sql =
        "SELECT users.id, orders.total FROM users, orders WHERE "
        "users.id = orders.user_id AND orders.status = " +
        std::to_string(rng.Uniform(5));
    if (rng.Bernoulli(0.5)) {
      sql += " AND users.org_id = " + std::to_string(rng.Uniform(100));
    }
    ASSERT_TRUE(w.Add(sql, 1.0).ok());
    queries.push_back(std::move(sql));
  }
  storage::Database db = MakeOrdersDb(800, 4000, 11);
  TuneFor(&db, w);
  uint64_t index_entries = 0;
  for (const std::string& sql : queries) {
    index_entries +=
        ExpectEnginesAgree(&db, sql).metrics.index_entries_read;
  }
  // Join probes must actually be index probes somewhere (the batched
  // sorted-probe path), or this test degenerates to scans only.
  EXPECT_GT(index_entries, 0u);
}

// ---------------------------------------------------------------------------
// Hand-written edge shapes: skip scan, index merge, IS NULL, params,
// LIMIT early-stop.

TEST(BatchEquivalenceTest, EdgeShapesAgree) {
  FaultRegistry::Instance().DisarmAll();
  storage::Database db = MakeUsersDb(4000, 5);
  // (status, created_at): first column low-NDV -> skip-scan candidate.
  catalog::IndexDef skip;
  skip.table = 0;
  skip.columns = {2, 4};
  ASSERT_TRUE(db.CreateIndex(skip).ok());
  // Single-column indexes on org_id and score -> OR index-merge fodder.
  catalog::IndexDef org;
  org.table = 0;
  org.columns = {1};
  ASSERT_TRUE(db.CreateIndex(org).ok());
  catalog::IndexDef score;
  score.table = 0;
  score.columns = {3};
  ASSERT_TRUE(db.CreateIndex(score).ok());

  const char* kStatements[] = {
      // Skip scan (leading column unconstrained).
      "SELECT id FROM users WHERE created_at = 1234",
      "SELECT id, status FROM users WHERE created_at BETWEEN 100 AND 160",
      // Index merge over the OR arms.
      "SELECT id FROM users WHERE org_id = 3 OR score = 512",
      "SELECT id FROM users WHERE org_id = 7 OR org_id = 9 OR score < 4",
      // IS NULL / IS NOT NULL.
      "SELECT id FROM users WHERE email IS NULL",
      "SELECT id FROM users WHERE email IS NOT NULL AND org_id = 3",
      // LIKE with '_' and non-prefix '%'.
      "SELECT id FROM users WHERE email LIKE '%user1_@%'",
      // '?' params never bind: both engines must reject every row the
      // same way (and charge the same scan costs doing it).
      "SELECT id FROM users WHERE org_id = ?",
      "SELECT id FROM users WHERE org_id = 3 AND score > ?",
      // LIMIT without sort: the strict early-stop path.
      "SELECT id FROM users WHERE status = 2 LIMIT 7",
      "SELECT id FROM users WHERE org_id = 3 LIMIT 1",
      "SELECT id FROM users LIMIT 13",
      // LIMIT with sort: bulk path + finalization truncation.
      "SELECT id, score FROM users WHERE status = 2 ORDER BY score DESC "
      "LIMIT 5",
      // Grouping with and without matching rows.
      "SELECT org_id, COUNT(*) FROM users WHERE score > 900 "
      "GROUP BY org_id",
      "SELECT COUNT(*) FROM users WHERE org_id = 100000",
      // Duplicate IN literals (deduped per probe, kept per filter).
      "SELECT id FROM users WHERE org_id IN (9, 3, 9)",
  };
  for (const char* sql : kStatements) {
    ExpectEnginesAgree(&db, sql);
  }
}

// ---------------------------------------------------------------------------
// TPC-C: analytical probes + interleaved DML on database copies

TEST(BatchEquivalenceTest, TpccAnalyticalWithInterleavedDml) {
  FaultRegistry::Instance().DisarmAll();
  workload::TpccDatabase tpcc;
  ASSERT_TRUE(tpcc.Load().ok());
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tpcc.NewOrder(&rng).ok());
    if (i % 3 == 0) ASSERT_TRUE(tpcc.Payment(&rng).ok());
    if (i % 7 == 0) ASSERT_TRUE(tpcc.Delivery(&rng).ok());
  }
  Result<workload::Workload> w = tpcc.AnalyticalWorkload();
  ASSERT_TRUE(w.ok());
  for (const workload::Query& q : w.ValueOrDie().queries) {
    ExpectEnginesAgree(&tpcc.db(), q.sql);
  }
}

TEST(BatchEquivalenceTest, DmlSequencesKeepCopiesIdentical) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(1200, 3);
  // Two copies, each driven by a different SELECT engine; DML shares one
  // code path but its locate step must behave identically, and every
  // SELECT in between must see the same mutated heap.
  storage::Database db_row = base;
  storage::Database db_batch = base;
  executor::Executor row_exec(
      &db_row, optimizer::CostModel(),
      EngineOptions(executor::EngineKind::kRowAtATime));
  executor::Executor batch_exec(
      &db_batch, optimizer::CostModel(),
      EngineOptions(executor::EngineKind::kBatch));

  const char* kScript[] = {
      "SELECT id, score FROM users WHERE org_id = 3",
      "UPDATE users SET score = 1 WHERE org_id = 3",
      "SELECT id, score FROM users WHERE org_id = 3",
      "DELETE FROM users WHERE status = 4 AND score > 800",
      "SELECT COUNT(*) FROM users WHERE status = 4",
      "INSERT INTO users (id, org_id, status, score, created_at) "
      "VALUES (999991, 3, 2, 512, 77)",
      "SELECT id FROM users WHERE org_id = 3 AND score = 512",
      "UPDATE users SET status = 0 WHERE score < 10",
      "SELECT status, COUNT(*) FROM users WHERE score < 20 "
      "GROUP BY status",
      // Heap fingerprint: the whole surviving table, both engines.
      "SELECT id, org_id, status, score, created_at FROM users "
      "ORDER BY id",
  };
  for (const char* sql : kScript) {
    const sql::Statement stmt = MustParse(sql);
    Result<executor::ExecuteResult> a = row_exec.Execute(stmt);
    Result<executor::ExecuteResult> b = batch_exec.Execute(stmt);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(ResultSignature(a.ValueOrDie()),
              ResultSignature(b.ValueOrDie()))
        << sql;
  }
}

// ---------------------------------------------------------------------------
// Whole-pipeline equivalence: the AIM run's validation replay under
// either engine, across thread counts and cache settings.

std::string PipelineSignature(const storage::Database& base,
                              const workload::Workload& w,
                              executor::EngineKind engine, int threads,
                              size_t cache_entries) {
  storage::Database db = base;
  core::AimOptions options;
  options.num_threads = threads;
  options.what_if_cache_entries = cache_entries;
  options.validation.replay_engine = engine;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  const core::AimReport& report = r.ValueOrDie();
  std::ostringstream out;
  out << std::hexfloat;
  for (const core::CandidateIndex& c : report.recommended) {
    out << "idx t" << c.def.table;
    for (catalog::ColumnId col : c.def.columns) out << "," << col;
    out << " benefit=" << c.benefit << " maint=" << c.maintenance << "\n";
  }
  for (const core::QueryValidation& v : report.validation.per_query) {
    out << "q" << v.fingerprint << " before=" << v.cpu_before
        << " after=" << v.cpu_after << " imp=" << v.improved
        << " reg=" << v.regressed << "\n";
  }
  out << "exec=" << report.validation.executed
      << " failed=" << report.validation.failed << "\n";
  for (const catalog::IndexDef* idx :
       db.catalog().AllIndexes(false, true)) {
    out << "final t" << idx->table;
    for (catalog::ColumnId col : idx->columns) out << "," << col;
    out << "\n";
  }
  return out.str();
}

TEST(BatchEquivalenceTest, PipelineBitIdenticalAcrossEngines) {
  FaultRegistry::Instance().DisarmAll();
  const storage::Database base = MakeUsersDb(500, 7);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 3", 50.0).ok());
  ASSERT_TRUE(
      w.Add("SELECT email FROM users WHERE status = 2 AND score > 500",
            20.0)
          .ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
            10.0)
          .ok());
  ASSERT_TRUE(
      w.Add("UPDATE users SET score = 1 WHERE org_id = 3", 4.0).ok());

  for (size_t cache : {size_t{4096}, size_t{0}}) {
    const std::string row_serial = PipelineSignature(
        base, w, executor::EngineKind::kRowAtATime, 1, cache);
    ASSERT_NE(row_serial.find("idx "), std::string::npos)
        << "pipeline recommended nothing:\n"
        << row_serial;
    for (int threads : {1, 2, 8}) {
      EXPECT_EQ(row_serial,
                PipelineSignature(base, w, executor::EngineKind::kBatch,
                                  threads, cache))
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(row_serial,
                PipelineSignature(base, w,
                                  executor::EngineKind::kRowAtATime,
                                  threads, cache))
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

}  // namespace
}  // namespace aim
