#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "workload/job.h"
#include "workload/monitor.h"
#include "workload/products.h"
#include "workload/replay.h"
#include "workload/tpch.h"

namespace aim::workload {
namespace {

using aim::testing::MakeUsersDb;

TEST(WorkloadTest, MakeQueryFillsFields) {
  Result<Query> r =
      MakeQuery("SELECT id FROM users WHERE org_id = 5", 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().weight, 3.0);
  EXPECT_EQ(r.ValueOrDie().normalized_sql,
            "SELECT id FROM users WHERE org_id = ?");
  EXPECT_NE(r.ValueOrDie().fingerprint, 0u);
}

TEST(WorkloadTest, AddRejectsBadSql) {
  Workload w;
  EXPECT_FALSE(w.Add("SELEC nonsense").ok());
  EXPECT_TRUE(w.empty());
}

TEST(WorkloadTest, QueryCopyIsDeep) {
  Query q = aim::testing::MustQuery("SELECT id FROM users WHERE a = 1");
  Query copy = q;
  EXPECT_EQ(copy.sql, q.sql);
  EXPECT_EQ(copy.fingerprint, q.fingerprint);
  EXPECT_NE(copy.stmt.select.get(), q.stmt.select.get());
}

TEST(MonitorTest, AccumulatesPerFingerprint) {
  WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  m.rows_examined = 100;
  m.rows_sent = 10;
  m.cpu_seconds = 0.5;
  monitor.RecordKeyed(1, "q1", m);
  monitor.RecordKeyed(1, "q1", m);
  monitor.RecordKeyed(2, "q2", m);
  EXPECT_EQ(monitor.distinct_queries(), 2u);
  const QueryStats* s = monitor.Find(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->executions, 2u);
  EXPECT_DOUBLE_EQ(s->cpu_avg(), 0.5);
  EXPECT_DOUBLE_EQ(s->ddr_avg(), 0.1);
  EXPECT_NEAR(s->expected_benefit(), 0.45, 1e-9);
}

TEST(MonitorTest, MergeFromAggregatesReplicas) {
  WorkloadMonitor a;
  WorkloadMonitor b;
  executor::ExecutionMetrics m;
  m.rows_examined = 10;
  m.rows_sent = 5;
  m.cpu_seconds = 1.0;
  a.RecordKeyed(1, "q", m);
  b.RecordKeyed(1, "q", m);
  b.RecordKeyed(2, "other", m);
  a.MergeFrom(b);
  EXPECT_EQ(a.distinct_queries(), 2u);
  EXPECT_EQ(a.Find(1)->executions, 2u);
}

TEST(MonitorTest, ResetClears) {
  WorkloadMonitor monitor;
  executor::ExecutionMetrics m;
  monitor.RecordKeyed(1, "q", m);
  monitor.Reset();
  EXPECT_EQ(monitor.distinct_queries(), 0u);
  EXPECT_EQ(monitor.Find(1), nullptr);
}

TEST(MonitorTest, SentToReadRatioClamped) {
  executor::ExecutionMetrics m;
  m.rows_examined = 5;
  m.rows_sent = 50;  // grouped queries can send "more" than examined
  EXPECT_DOUBLE_EQ(m.SentToReadRatio(), 1.0);
  executor::ExecutionMetrics zero;
  EXPECT_DOUBLE_EQ(zero.SentToReadRatio(), 1.0);
}

TEST(ReplayTest, ProducesSeriesAndStats) {
  storage::Database db = MakeUsersDb(2000);
  Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  ReplayDriver::Options options;
  options.offered_qps = 20;
  options.cpu_capacity_seconds_per_tick = 10.0;
  ReplayDriver driver(&db, optimizer::CostModel(), options);
  std::vector<ReplayTick> series = driver.Run(w, 5);
  ASSERT_EQ(series.size(), 5u);
  for (const auto& tick : series) {
    EXPECT_GT(tick.throughput_qps, 0.0);
    EXPECT_GE(tick.cpu_utilization_pct, 0.0);
    EXPECT_LE(tick.cpu_utilization_pct, 100.0);
  }
  EXPECT_EQ(driver.monitor().distinct_queries(), 1u);
  EXPECT_GE(driver.monitor().Snapshot()[0].executions, 50u);
}

TEST(ReplayTest, SaturationCapsThroughput) {
  storage::Database db = MakeUsersDb(5000);
  Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE score > 0", 1.0).ok());
  ReplayDriver::Options options;
  options.offered_qps = 1000;
  options.cpu_capacity_seconds_per_tick = 0.001;  // tiny machine
  ReplayDriver driver(&db, optimizer::CostModel(), options);
  std::vector<ReplayTick> series = driver.Run(w, 2);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_LT(series[0].throughput_qps, 1000.0);
}

TEST(ReplayTest, OnTickHookCanMutateDatabase) {
  storage::Database db = MakeUsersDb(3000);
  Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 1.0).ok());
  ReplayDriver::Options options;
  options.offered_qps = 30;
  options.cpu_capacity_seconds_per_tick = 100.0;
  ReplayDriver driver(&db, optimizer::CostModel(), options);
  std::vector<ReplayTick> series =
      driver.Run(w, 6, [&](int tick) {
        if (tick == 3) {
          catalog::IndexDef def;
          def.table = 0;
          def.columns = {1};
          ASSERT_TRUE(db.CreateIndex(def).ok());
        }
      });
  // After the index lands, per-query CPU drops sharply.
  EXPECT_LT(series[5].avg_cpu_per_query,
            series[0].avg_cpu_per_query * 0.5);
}

// ---------- generators -------------------------------------------------------

TEST(TpchTest, SchemaAndQueriesParse) {
  storage::Database db;
  TpchOptions options;
  options.materialized_sf = 0.002;
  ASSERT_TRUE(BuildTpch(&db, options).ok());
  EXPECT_EQ(db.catalog().table_count(), 8u);
  Result<Workload> w = TpchQueries();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.ValueOrDie().size(), 22u);
  // All 22 queries must analyze against the schema.
  for (const Query& q : w.ValueOrDie().queries) {
    Result<optimizer::AnalyzedQuery> aq =
        optimizer::Analyze(q.stmt, db.catalog());
    EXPECT_TRUE(aq.ok()) << aq.status().ToString() << "\n" << q.sql;
  }
}

TEST(TpchTest, StatsScaledToTargetSf) {
  storage::Database db;
  TpchOptions options;
  options.materialized_sf = 0.002;
  options.stats_sf = 10.0;
  ASSERT_TRUE(BuildTpch(&db, options).ok());
  const catalog::TableId li =
      db.catalog().FindTable("lineitem").ValueOrDie();
  // SF10 lineitem ~ 60M rows in stats, even though few are materialized.
  EXPECT_GT(db.catalog().table(li).stats.row_count, 10000000u);
  EXPECT_LT(db.heap(li).live_count(), 100000u);
}

TEST(TpchTest, QueriesExecuteOnMaterializedData) {
  storage::Database db;
  TpchOptions options;
  options.materialized_sf = 0.002;
  options.stats_sf = 0.002;  // keep stats honest for execution
  ASSERT_TRUE(BuildTpch(&db, options).ok());
  executor::Executor exec(&db, optimizer::CostModel());
  for (int qn : {1, 3, 6, 12, 14}) {
    Result<Query> q = TpchQuery(qn);
    ASSERT_TRUE(q.ok());
    Result<executor::ExecuteResult> r = exec.Execute(q.ValueOrDie().stmt);
    ASSERT_TRUE(r.ok()) << "Q" << qn << ": " << r.status().ToString();
    EXPECT_GT(r.ValueOrDie().metrics.rows_examined, 0u) << "Q" << qn;
  }
}

TEST(TpchTest, QueryNumberValidated) {
  EXPECT_FALSE(TpchQuery(0).ok());
  EXPECT_FALSE(TpchQuery(23).ok());
  EXPECT_TRUE(TpchQuery(21).ok());
}

TEST(JobTest, SchemaAndQueriesParse) {
  storage::Database db;
  JobOptions options;
  options.scale = 0.05;
  ASSERT_TRUE(BuildJob(&db, options).ok());
  EXPECT_GE(db.catalog().table_count(), 10u);
  Result<Workload> w = JobQueries();
  ASSERT_TRUE(w.ok());
  EXPECT_GE(w.ValueOrDie().size(), 20u);
  int join_queries = 0;
  for (const Query& q : w.ValueOrDie().queries) {
    Result<optimizer::AnalyzedQuery> aq =
        optimizer::Analyze(q.stmt, db.catalog());
    ASSERT_TRUE(aq.ok()) << aq.status().ToString() << "\n" << q.sql;
    if (aq.ValueOrDie().instances.size() >= 3) ++join_queries;
  }
  // JOB is join-heavy by construction.
  EXPECT_GT(join_queries, 10);
}

TEST(ProductsTest, TableIIMetadataMatchesPaper) {
  std::vector<ProductSpec> specs = TableIIProducts();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].tables, 147);
  EXPECT_EQ(specs[0].join_queries, 67);
  EXPECT_EQ(specs[0].mix, WorkloadMix::kWriteHeavy);
  EXPECT_EQ(specs[1].tables, 184);
  EXPECT_EQ(specs[1].join_queries, 733);
  EXPECT_EQ(specs[6].tables, 79);
  EXPECT_EQ(specs[6].join_queries, 386);
}

TEST(ProductsTest, BuildSmallProduct) {
  ProductSpec spec;
  spec.name = "Mini";
  spec.tables = 6;
  spec.join_queries = 8;
  spec.rows_per_table = 300;
  spec.mix = WorkloadMix::kBalanced;
  Result<ProductInstance> r = BuildProduct(spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ProductInstance& p = r.ValueOrDie();
  EXPECT_EQ(p.db.catalog().table_count(), 6u);
  EXPECT_GT(p.workload.size(), 10u);
  EXPECT_FALSE(p.dba_indexes.empty());
  // Every query must analyze.
  int dml = 0;
  for (const Query& q : p.workload.queries) {
    Result<optimizer::AnalyzedQuery> aq =
        optimizer::Analyze(q.stmt, p.db.catalog());
    EXPECT_TRUE(aq.ok()) << aq.status().ToString() << "\n" << q.sql;
    if (q.stmt.is_dml()) ++dml;
  }
  EXPECT_GT(dml, 0);
}

TEST(ProductsTest, MixControlsWriteShare) {
  ProductSpec read_spec;
  read_spec.tables = 4;
  read_spec.join_queries = 10;
  read_spec.rows_per_table = 100;
  read_spec.mix = WorkloadMix::kReadHeavy;
  ProductSpec write_spec = read_spec;
  write_spec.mix = WorkloadMix::kWriteHeavy;
  auto count_dml = [](const ProductInstance& p) {
    int n = 0;
    for (const Query& q : p.workload.queries) {
      if (q.stmt.is_dml()) ++n;
    }
    return n;
  };
  Result<ProductInstance> reads = BuildProduct(read_spec);
  Result<ProductInstance> writes = BuildProduct(write_spec);
  ASSERT_TRUE(reads.ok() && writes.ok());
  EXPECT_GT(count_dml(writes.ValueOrDie()),
            count_dml(reads.ValueOrDie()));
}

TEST(ProductsTest, DbaIndexesApplyCleanly) {
  ProductSpec spec;
  spec.tables = 5;
  spec.join_queries = 6;
  spec.rows_per_table = 200;
  Result<ProductInstance> r = BuildProduct(spec);
  ASSERT_TRUE(r.ok());
  ProductInstance& p = r.ValueOrDie();
  ASSERT_TRUE(ApplyIndexes(&p.db, p.dba_indexes).ok());
  EXPECT_EQ(p.db.catalog().AllIndexes(false, false).size(),
            p.dba_indexes.size());
}

TEST(ProductsTest, JaccardSimilarity) {
  catalog::IndexDef a;
  a.table = 0;
  a.columns = {1};
  catalog::IndexDef b;
  b.table = 0;
  b.columns = {2};
  catalog::IndexDef c;
  c.table = 1;
  c.columns = {1};
  EXPECT_DOUBLE_EQ(IndexSetJaccard({a, b}, {a, b}), 1.0);
  EXPECT_DOUBLE_EQ(IndexSetJaccard({a}, {b}), 0.0);
  EXPECT_NEAR(IndexSetJaccard({a, b}, {a, c}), 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(IndexSetJaccard({}, {}), 1.0);
}

}  // namespace
}  // namespace aim::workload
