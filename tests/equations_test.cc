// Checks tied to the paper's equations and problem definition:
// Eq. 2-4 (continuous tuning guarantees), Eq. 5 (expected benefit),
// Eq. 7/8 (utility accounting), the knapsack discipline, and the IPP
// relaxation of Sec. V-A.
#include <gtest/gtest.h>

#include "core/aim.h"
#include "core/sharding.h"
#include "executor/executor.h"
#include "tests/test_util.h"

namespace aim::core {
namespace {

using aim::testing::MakeUsersDb;
using aim::testing::MustQuery;

// ---------- Eq. 5: B(q) = (1 - ddr_avg) * cpu_avg ---------------------------

TEST(Eq5Test, BenefitFormulaExact) {
  workload::QueryStats stats;
  stats.executions = 4;
  stats.total_cpu_seconds = 2.0;   // cpu_avg = 0.5
  stats.sum_sent_to_read = 1.2;    // ddr_avg = 0.3
  EXPECT_DOUBLE_EQ(stats.cpu_avg(), 0.5);
  EXPECT_DOUBLE_EQ(stats.ddr_avg(), 0.3);
  EXPECT_DOUBLE_EQ(stats.expected_benefit(), 0.7 * 0.5);
}

TEST(Eq5Test, EfficientQueryHasNoBenefit) {
  // ddr_avg = 1 (everything read is sent): nothing to gain.
  workload::QueryStats stats;
  stats.executions = 10;
  stats.total_cpu_seconds = 5.0;
  stats.sum_sent_to_read = 10.0;
  EXPECT_DOUBLE_EQ(stats.expected_benefit(), 0.0);
}

TEST(Eq5Test, ObservedDdrMatchesExecution) {
  storage::Database db = MakeUsersDb(1000);
  executor::Executor exec(&db, optimizer::CostModel());
  // ~10 of 1000 rows match: ddr ingredient ~ 0.01.
  auto r = exec.Execute(
      aim::testing::MustParse("SELECT id FROM users WHERE org_id = 5"));
  ASSERT_TRUE(r.ok());
  const double ratio = r.ValueOrDie().metrics.SentToReadRatio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.05);
}

// ---------- Eq. 7/8: utility accounting -------------------------------------

TEST(Eq7Test, BenefitProportionalToCostReduction) {
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q = MustQuery("SELECT id FROM users WHERE org_id = 5");
  SelectedQuery sq;
  sq.query = &q;
  sq.stats.executions = 100;
  sq.stats.total_cpu_seconds = 50.0;  // cpu_avg 0.5s

  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  RankingResult r = RankAndSelect({def}, {sq}, &what_if, {});
  ASSERT_EQ(r.selected.size(), 1u);

  // Cross-check Eq. 7 by recomputing the ingredients.
  const double cost_phi = [&] {
    what_if.ClearConfiguration();
    return what_if.QueryCost(q.stmt).ValueOrDie();
  }();
  (void)what_if.SetConfiguration({def});
  const double cost_with = what_if.QueryCost(q.stmt).ValueOrDie();
  what_if.ClearConfiguration();
  const double expected =
      (cost_phi - cost_with) / cost_phi * 0.5 * 100.0;
  EXPECT_NEAR(r.selected[0].benefit, expected, expected * 0.01);
}

TEST(Eq8Test, MaintenanceScalesWithWriteRate) {
  storage::Database db = MakeUsersDb(2000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query read = MustQuery(
      "SELECT id FROM users WHERE score = 7", 1.0);
  workload::Query write = MustQuery(
      "UPDATE users SET score = 1 WHERE id = 5", 1.0);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {3};

  auto maintenance_at = [&](uint64_t writes) {
    SelectedQuery sr;
    sr.query = &read;
    sr.stats.executions = 10;
    sr.stats.total_cpu_seconds = 1.0;
    SelectedQuery sw;
    sw.query = &write;
    sw.stats.executions = writes;
    sw.stats.total_cpu_seconds = 0.001 * writes;
    RankingResult r = RankAndSelect({def}, {sr, sw}, &what_if, {});
    const CandidateIndex& c =
        r.selected.empty() ? r.rejected[0] : r.selected[0];
    return c.maintenance;
  };
  const double m1 = maintenance_at(100);
  const double m2 = maintenance_at(1000);
  EXPECT_GT(m2, m1 * 5.0);  // ~linear in write executions
}

TEST(KnapsackTest, SelectionRespectsDensityOrder) {
  // Property: every selected index has density >= any rejected index that
  // would still have fit in the remaining budget.
  storage::Database db = MakeUsersDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q1 = MustQuery("SELECT id FROM users WHERE org_id = 5",
                                 100.0);
  workload::Query q2 = MustQuery(
      "SELECT id FROM users WHERE created_at = 7", 60.0);
  workload::Query q3 = MustQuery(
      "SELECT email FROM users WHERE status = 2 AND score > 500", 30.0);
  std::vector<SelectedQuery> queries;
  for (auto* q : {&q1, &q2, &q3}) {
    SelectedQuery sq;
    sq.query = q;
    queries.push_back(sq);
  }
  std::vector<catalog::IndexDef> candidates;
  for (std::vector<catalog::ColumnId> cols :
       std::vector<std::vector<catalog::ColumnId>>{
           {1}, {4}, {2, 3}, {2, 3, 5}, {3}}) {
    catalog::IndexDef def;
    def.table = 0;
    def.columns = cols;
    candidates.push_back(def);
  }
  RankingOptions options;
  options.storage_budget_bytes = 300000;
  RankingResult r = RankAndSelect(candidates, queries, &what_if, options);
  EXPECT_LE(r.selected_bytes, options.storage_budget_bytes);
  double min_selected_density = 1e300;
  for (const auto& c : r.selected) {
    min_selected_density = std::min(min_selected_density, c.density());
  }
  for (const auto& c : r.rejected) {
    if (c.utility() <= 0) continue;  // rejected for utility, fine
    if (r.selected_bytes + c.size_bytes <=
        options.storage_budget_bytes) {
      // It fit but was not chosen: its density must not beat the picks.
      EXPECT_LE(c.density(), min_selected_density + 1e-9);
    }
  }
}

// ---------- Eq. 2-4: continuous-tuning guarantees ---------------------------

TEST(Eq3Eq4Test, ValidationReportsImprovementAndRegressions) {
  storage::Database db = MakeUsersDb(3000);
  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 10.0).ok());
  std::vector<SelectedQuery> selected;
  for (const auto& q : w.queries) {
    SelectedQuery sq;
    sq.query = &q;
    selected.push_back(sq);
  }
  CandidateIndex good;
  good.def.table = 0;
  good.def.columns = {1};
  CloneValidationOptions options;
  options.lambda2 = 0.05;
  options.lambda3 = 0.20;
  Result<CloneValidationResult> r =
      ValidateOnClone(db, {good}, selected, optimizer::CostModel(),
                      options);
  ASSERT_TRUE(r.ok());
  // Eq. 3: at least one query improved by >= lambda2.
  EXPECT_TRUE(r.ValueOrDie().any_query_improved);
  // Eq. 4: no query regressed beyond lambda3.
  EXPECT_TRUE(r.ValueOrDie().no_regressions);
  ASSERT_EQ(r.ValueOrDie().per_query.size(), 1u);
  EXPECT_LE(r.ValueOrDie().per_query[0].cpu_after,
            (1.0 + options.lambda3) *
                r.ValueOrDie().per_query[0].cpu_before);
}

TEST(Eq2Test, RunOnceKeepsWorkloadCostNearBootstrapOptimum) {
  // Eq. 2 with lambda1: the continuous path must land within (1+lambda1)
  // of a from-scratch bootstrap on the same workload.
  storage::Database scratch = MakeUsersDb(4000);
  storage::Database incremental = MakeUsersDb(4000);
  // The incremental database starts from a mediocre pre-existing config.
  catalog::IndexDef mediocre;
  mediocre.table = 0;
  mediocre.columns = {2};  // status: low selectivity
  ASSERT_TRUE(incremental.CreateIndex(mediocre).ok());

  workload::Workload w;
  ASSERT_TRUE(w.Add("SELECT id FROM users WHERE org_id = 5", 100.0).ok());
  ASSERT_TRUE(
      w.Add("SELECT id FROM users WHERE created_at = 9", 50.0).ok());

  core::AimOptions options;
  options.validate_on_clone = false;
  AutomaticIndexManager scratch_aim(&scratch, optimizer::CostModel(),
                                    options);
  ASSERT_TRUE(scratch_aim.RunOnce(w, nullptr).ok());
  AutomaticIndexManager inc_aim(&incremental, optimizer::CostModel(),
                                options);
  ASSERT_TRUE(inc_aim.RunOnce(w, nullptr).ok());

  auto workload_cost = [&](const storage::Database& db) {
    optimizer::WhatIfOptimizer what_if(db.catalog(),
                                       optimizer::CostModel());
    return what_if.WorkloadCost(w.statements(), w.weights()).ValueOrDie();
  };
  const double lambda1 = 0.10;
  EXPECT_LE(workload_cost(incremental),
            (1.0 + lambda1) * workload_cost(scratch));
}

// ---------- Sec. V-A: IPP relaxation -----------------------------------------

TEST(IppRelaxationTest, FloorTruncatesPrefix) {
  storage::Database db = MakeUsersDb(2000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q = MustQuery(
      "SELECT payload FROM users WHERE org_id = 1 AND status = 2 AND "
      "created_at = 3 AND email = 'user7'");
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();

  CandidateGenOptions off;
  CandidateGenerator gen_off(db.catalog(), &what_if, off);
  auto full = gen_off.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].width(), 4u);

  CandidateGenOptions on;
  on.ipp_selectivity_floor = 1e-4;
  CandidateGenerator gen_on(db.catalog(), &what_if, on);
  auto relaxed = gen_on.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(relaxed.size(), 1u);
  // email (~1/2000) x created_at (~1/2000) already clears the floor:
  // org_id / status add nothing and are dropped.
  EXPECT_LT(relaxed[0].width(), full[0].width());
  EXPECT_GE(relaxed[0].width(), 1u);
}

TEST(IppRelaxationTest, KeepsEverythingAboveFloor) {
  storage::Database db = MakeUsersDb(2000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  workload::Query q = MustQuery(
      "SELECT payload FROM users WHERE org_id = 1 AND status = 2");
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();
  CandidateGenOptions on;
  on.ipp_selectivity_floor = 1e-9;  // never reached by 1/100 x 1/5
  CandidateGenerator gen(db.catalog(), &what_if, on);
  auto orders = gen.GenerateCandidatesForSelection(
      q, aq, 2, CoveringMode::kNonCovering);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].width(), 2u);
}

// ---------- engine pricing ----------------------------------------------------

TEST(EnginePricingTest, LsmKeepsWriteChurnedIndexLonger) {
  // The ablation crossover as a regression test: at a high write:read
  // ratio the B+Tree engine drops the index while LSM keeps it.
  auto decide = [&](optimizer::CostParams params, double write_weight) {
    storage::Database db = MakeUsersDb(8000, 31);
    workload::Workload w;
    (void)w.Add("SELECT id FROM users WHERE score = 77", 100.0);
    (void)w.Add("UPDATE users SET score = 1 WHERE id = 5", write_weight);
    core::AimOptions options;
    options.validate_on_clone = false;
    AutomaticIndexManager aim(&db, optimizer::CostModel(params), options);
    Result<AimReport> r = aim.Recommend(w, nullptr);
    if (!r.ok()) return false;
    for (const auto& c : r.ValueOrDie().recommended) {
      if (!c.def.columns.empty() && c.def.columns[0] == 3) return true;
    }
    return false;
  };
  const double kHighChurn = 32000.0;
  EXPECT_FALSE(decide(optimizer::CostParams::BTree(), kHighChurn));
  EXPECT_TRUE(decide(optimizer::CostParams::Lsm(), kHighChurn));
  // Both engines index at low churn.
  EXPECT_TRUE(decide(optimizer::CostParams::BTree(), 100.0));
  EXPECT_TRUE(decide(optimizer::CostParams::Lsm(), 100.0));
}

}  // namespace
}  // namespace aim::core
