// aim_cli — run the AIM index advisor against a schema + workload spec.
//
//   $ aim_cli --schema schema.aim --workload workload.aim
//             [--budget-mb 512] [--width 8] [--j 2] [--engine btree|lsm]
//             [--no-validate] [--explain]
//
// The spec formats are documented in src/workload/spec.h; sample files
// live in tools/examples/.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "core/aim.h"
#include "workload/spec.h"

using namespace aim;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --schema FILE --workload FILE [options]\n"
      "  --budget-mb N    storage budget for new indexes (default: "
      "unlimited)\n"
      "  --width N        maximum index width (default 8)\n"
      "  --j N            join parameter (default 2)\n"
      "  --engine E       btree | lsm (default btree)\n"
      "  --no-validate    skip clone validation (estimate-only)\n"
      "  --explain        print per-index explanations\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path;
  std::string workload_path;
  core::AimOptions options;
  optimizer::CostParams params;
  bool explain = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--schema") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      schema_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      workload_path = v;
    } else if (arg == "--budget-mb") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.ranking.storage_budget_bytes =
          std::strtod(v, nullptr) * 1024.0 * 1024.0;
    } else if (arg == "--width") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.candidates.max_index_width =
          std::strtoul(v, nullptr, 10);
    } else if (arg == "--j") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.candidates.join_parameter =
          static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (EqualsIgnoreCase(v, "lsm")) {
        params = optimizer::CostParams::Lsm();
      } else if (!EqualsIgnoreCase(v, "btree")) {
        return Usage(argv[0]);
      }
    } else if (arg == "--no-validate") {
      options.validate_on_clone = false;
    } else if (arg == "--explain") {
      explain = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (schema_path.empty() || workload_path.empty()) {
    return Usage(argv[0]);
  }

  Result<std::string> schema_text = ReadFile(schema_path);
  if (!schema_text.ok()) {
    std::fprintf(stderr, "%s\n", schema_text.status().ToString().c_str());
    return 1;
  }
  Result<std::string> workload_text = ReadFile(workload_path);
  if (!workload_text.ok()) {
    std::fprintf(stderr, "%s\n",
                 workload_text.status().ToString().c_str());
    return 1;
  }

  Result<storage::Database> db =
      workload::BuildDatabaseFromSpec(schema_text.ValueOrDie());
  if (!db.ok()) {
    std::fprintf(stderr, "schema: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w =
      workload::ParseWorkloadSpec(workload_text.ValueOrDie());
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    return 1;
  }

  core::AutomaticIndexManager aim(&db.ValueOrDie(),
                                  optimizer::CostModel(params), options);
  Result<core::AimReport> report =
      options.validate_on_clone
          ? aim.RunOnce(w.ValueOrDie(), nullptr)
          : aim.Recommend(w.ValueOrDie(), nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "AIM: %s\n", report.status().ToString().c_str());
    return 1;
  }

  const core::AimReport& r = report.ValueOrDie();
  if (r.recommended.empty()) {
    std::printf("-- no beneficial indexes found\n");
  }
  for (const core::CandidateIndex& c : r.recommended) {
    std::printf("CREATE INDEX ON %s;  -- %s, utility %.4f CPU-s/interval\n",
                db.ValueOrDie().catalog().DescribeIndex(c.def).c_str(),
                HumanBytes(c.size_bytes).c_str(), c.utility());
  }
  if (explain) {
    std::printf("\n");
    for (const std::string& text : r.explanations) {
      std::printf("%s\n", text.c_str());
    }
  }
  std::fprintf(stderr,
               "-- %zu queries analyzed, %zu candidates evaluated, "
               "%llu what-if calls, %.3fs\n",
               r.stats.queries_selected, r.stats.candidates_evaluated,
               (unsigned long long)r.stats.what_if_calls,
               r.stats.runtime_seconds);
  return 0;
}
