#!/usr/bin/env python3
"""Threshold gate over BENCH_results.json.

Validates the performance contracts the benchmarks exist to defend:

  fleet_tuning          >= 100 tenants tuned per interval, decisions
                        bit-identical across thread counts, and (only on
                        machines with >= 8 hardware threads) >= 3x
                        end-to-end speedup at 8 threads vs the serial
                        fleet loop.
  workload_compression  compression ratio >= 10x and interval-2
                        candidate-cluster reuse rate >= 0.6.
  executor_batch        vectorized batch engine >= 2x over the
                        row-at-a-time interpreter (single-thread
                        vectorization win; holds on 1-core boxes too).
  exploration           ordered deployment reaches 50% of the modeled
                        benefit >= 1.2x earlier than the single-
                        transaction apply, per-interval projected regret
                        stays within budget (top-1 admission excepted),
                        and zero quarantined indexes were ever applied.

Speedup gates that depend on parallel hardware condition on the
`run_meta.hardware_concurrency` every bench records (which is why that
metadata is mandatory): a single-core CI box cannot reproduce an 8-thread
speedup and must not fail for it. Every *present* section must carry
`run_meta`; a missing section is reported and skipped (its bench did not
run). Exit codes: 0 = all present gates hold, 1 = a gate failed,
77 = nothing to check (no results file or no gated section) — wired as
the ctest SKIP_RETURN_CODE.

Usage: bench_check.py [path/to/BENCH_results.json]
"""

import json
import sys

SKIP_EXIT = 77

failures = []
checked = []
skipped = []


def check(section, name, ok, detail):
    label = f"{section}.{name}"
    checked.append(label)
    if ok:
        print(f"PASS  {label}: {detail}")
    else:
        print(f"FAIL  {label}: {detail}")
        failures.append(label)


def require_run_meta(results, section):
    """Satellite contract: every bench section records uniform run
    metadata. Returns hardware_concurrency (0 when absent)."""
    meta = results[section].get("run_meta")
    ok = (
        isinstance(meta, dict)
        and isinstance(meta.get("hardware_concurrency"), int)
        and isinstance(meta.get("threads"), int)
        and isinstance(meta.get("timestamp_utc"), str)
    )
    check(section, "run_meta", ok,
          f"hardware_concurrency/threads/timestamp_utc present: {meta}")
    return meta.get("hardware_concurrency", 0) if isinstance(meta, dict) else 0


def gate_fleet(results):
    s = results["fleet_tuning"]
    hardware = require_run_meta(results, "fleet_tuning")
    tenants = s.get("tenants_per_interval", 0)
    check("fleet_tuning", "tenants_per_interval", tenants >= 100,
          f"{tenants} (floor 100)")
    identical = s.get("bit_identical_across_threads", False)
    check("fleet_tuning", "bit_identical_across_threads", identical is True,
          str(identical))
    speedup = s.get("speedup_at_8_threads", 0.0)
    if hardware >= 8:
        check("fleet_tuning", "speedup_at_8_threads", speedup >= 3.0,
              f"{speedup:.2f}x (floor 3.0x on {hardware} hardware threads)")
    else:
        skipped.append("fleet_tuning.speedup_at_8_threads")
        print(f"SKIP  fleet_tuning.speedup_at_8_threads: {speedup:.2f}x "
              f"unjudged on {hardware} hardware thread(s) — gate needs >= 8")


def gate_compression(results):
    s = results["workload_compression"]
    require_run_meta(results, "workload_compression")
    ratio = s.get("compression_ratio", 0.0)
    check("workload_compression", "compression_ratio", ratio >= 10.0,
          f"{ratio:.1f}x (floor 10x)")
    reuse = s.get("interval2_reuse_rate", 0.0)
    check("workload_compression", "interval2_reuse_rate", reuse >= 0.6,
          f"{reuse:.2f} (floor 0.6)")


def gate_executor(results):
    s = results["executor_batch"]
    require_run_meta(results, "executor_batch")
    speedup = s.get("batch_speedup", 0.0)
    check("executor_batch", "batch_speedup", speedup >= 2.0,
          f"{speedup:.2f}x (floor 2.0x)")


def gate_exploration(results):
    s = results["exploration"]
    require_run_meta(results, "exploration")
    speedup = s.get("time_to_half_benefit_speedup", 0.0)
    check("exploration", "time_to_half_benefit_speedup", speedup >= 1.2,
          f"{speedup:.2f}x (floor 1.2x — ordered deployment must reach "
          f"50% benefit measurably earlier than the single-transaction "
          f"apply)")
    bounded = s.get("regret_bounded", False)
    check("exploration", "regret_bounded", bounded is True,
          f"{bounded} (per-interval projected regret within budget, "
          f"top-1 admission excepted)")
    quarantined_applies = s.get("quarantined_applies", -1)
    check("exploration", "quarantined_applies", quarantined_applies == 0,
          f"{quarantined_applies} (a quarantined index must never be "
          f"applied)")


GATES = {
    "fleet_tuning": gate_fleet,
    "workload_compression": gate_compression,
    "executor_batch": gate_executor,
    "exploration": gate_exploration,
}


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_results.json"
    try:
        with open(path) as f:
            results = json.load(f)
    except FileNotFoundError:
        print(f"SKIP  no results file at {path} — run the benchmarks first")
        return SKIP_EXIT
    except json.JSONDecodeError as e:
        print(f"FAIL  {path} is not valid JSON: {e}")
        return 1

    for section, gate in GATES.items():
        if section in results:
            gate(results)
        else:
            skipped.append(section)
            print(f"SKIP  section '{section}' absent (bench not run)")

    if not checked:
        print("SKIP  no gated section present")
        return SKIP_EXIT
    print(f"\n{len(checked) - len(failures)}/{len(checked)} gates passed, "
          f"{len(skipped)} skipped")
    if failures:
        print("failed: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
