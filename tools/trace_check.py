#!/usr/bin/env python3
"""Validates a Chrome trace_event file produced by aim::obs::Tracer.

Checks, in order:
  1. the file is well-formed JSON with a top-level {"traceEvents": [...]};
  2. every event carries the required fields with sane types;
  3. B/E events are balanced per (pid, tid): strict LIFO nesting, matched
     names, monotone non-decreasing timestamps, nothing left open;
  4. (optional) --require NAME: the trace contains at least one complete
     span named NAME (repeatable);
  5. (optional) --require-if TRIGGER:NAME: if the trace contains at least
     one complete span named TRIGGER, it must also contain one named NAME
     (repeatable). This is how online-build spans are enforced: a trace
     from a run that never built an index online owes nothing, but any
     trace containing `online.build` must also show `online.catchup` and
     `online.swap`.

Exit status 0 = valid, 1 = invalid (details on stderr). This is the
tier-1 gate behind `ctest -L tracing`: the C++ side writes
<build>/obs_trace.json from a full tuning interval plus a sharded run,
and this script is the independent, non-C++ reader proving the export is
consumable outside the process that wrote it.

Usage:
  trace_check.py TRACE.json [--require aim.recommend ...]
      [--require-if online.build:online.swap ...] [--quiet]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"trace_check: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one complete span with this name "
        "(repeatable)",
    )
    parser.add_argument(
        "--require-if",
        action="append",
        default=[],
        metavar="TRIGGER:NAME",
        help="if any complete span named TRIGGER exists, require one "
        "named NAME too (repeatable)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()

    conditional = []
    for spec in args.require_if:
        trigger, sep, name = spec.partition(":")
        if not sep or not trigger or not name:
            return fail(f"--require-if needs TRIGGER:NAME, got {spec!r}")
        conditional.append((trigger, name))

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' must be an array")

    # Per-(pid, tid) open-span stacks of (name, ts).
    stacks = {}
    completed = []  # span names, from matched B/E pairs
    last_ts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            return fail(f"event {i}: unexpected phase {ph!r}")
        for field, kinds in (
            ("name", str),
            ("pid", int),
            ("tid", int),
            ("ts", (int, float)),
        ):
            if not isinstance(ev.get(field), kinds):
                return fail(f"event {i}: missing/mistyped {field!r}: {ev}")
        key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(key, 0):
            return fail(
                f"event {i}: timestamp {ts} goes backwards on "
                f"pid/tid {key}"
            )
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append((ev["name"], ts))
        else:
            if not stack:
                return fail(
                    f"event {i}: E for {ev['name']!r} with no open span "
                    f"on pid/tid {key}"
                )
            name, begin_ts = stack.pop()
            if name != ev["name"]:
                return fail(
                    f"event {i}: E name {ev['name']!r} does not match "
                    f"innermost open span {name!r} (non-LIFO nesting)"
                )
            if ts < begin_ts:
                return fail(f"event {i}: span {name!r} ends before it begins")
            completed.append(name)

    for key, stack in stacks.items():
        if stack:
            names = ", ".join(name for name, _ in stack)
            return fail(f"pid/tid {key}: unclosed spans: {names}")

    have = set(completed)
    missing = [name for name in args.require if name not in have]
    missing += [
        name
        for trigger, name in conditional
        if trigger in have and name not in have
    ]
    if missing:
        return fail(
            f"required spans absent: {', '.join(missing)} "
            f"(trace has: {', '.join(sorted(have))})"
        )

    if not args.quiet:
        print(
            f"trace_check: OK — {len(events)} events, "
            f"{len(completed)} spans, {len(have)} distinct names, "
            f"{len(stacks)} threads"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
